"""Importance sampling with a guide program as the proposal (paper Sec. 5.2).

A single importance-sampling step jointly executes the guide and the model
conditioned on a concrete observation trace::

    ∅ | ∅; (latent : σℓ) ⊢ m_g ⇓w_g _
    ∅ | (latent : σℓ); (obs : σo) ⊢ m_m ⇓w_m _
    -------------------------------------------
    m_g; m_m; σo ⊢ ⟨σℓ, w_m / w_g⟩

The guide draws the latent trace σℓ (and receives the model's branch
selections); the model scores it against the prior and the likelihood of the
observations.  The importance weight of the particle is ``w_m / w_g``
(``log_weight`` below is its logarithm).  If the model and guide are
well-typed against the same latent protocol, Thm. 5.2 guarantees that every
trace with posterior mass is reachable, so the self-normalised estimator is
consistent.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence, Tuple

import numpy as np

from repro.core import ast
from repro.core.coroutines import run_model_guide
from repro.core.semantics import traces as tr
from repro.errors import InferenceError
from repro.utils.numerics import (
    effective_sample_size,
    log_mean_exp,
    normalize_log_weights,
)
from repro.utils.rng import ensure_rng


@dataclass(frozen=True)
class ImportanceSample:
    """One importance-sampling particle."""

    latent_trace: tr.Trace
    log_weight: float
    model_log_weight: float
    guide_log_weight: float
    model_value: object
    guide_value: object

    @property
    def latent_values(self) -> List[object]:
        """The sampled latent values, in protocol order."""
        return tr.sample_values(self.latent_trace)


@dataclass
class ImportanceResult:
    """A batch of importance-sampling particles plus summary statistics."""

    samples: List[ImportanceSample]

    @property
    def num_samples(self) -> int:
        return len(self.samples)

    @property
    def log_weights(self) -> List[float]:
        return [s.log_weight for s in self.samples]

    def log_evidence(self) -> float:
        """Estimate of ``log p(σo)`` via the mean importance weight."""
        return log_mean_exp(self.log_weights)

    def effective_sample_size(self) -> float:
        return effective_sample_size(self.log_weights)

    def normalized_weights(self) -> np.ndarray:
        return normalize_log_weights(self.log_weights)

    def posterior_expectation(
        self, statistic: Callable[[ImportanceSample], float]
    ) -> float:
        """Self-normalised estimate of ``E[statistic | observations]``."""
        if not self.samples:
            raise InferenceError("no importance samples were drawn")
        values = np.array([statistic(s) for s in self.samples], dtype=float)
        weights = self.normalized_weights()
        return float(np.dot(values, weights))

    def posterior_expectation_of_site(self, index: int) -> float:
        """Posterior mean of the ``index``-th latent value in protocol order.

        Particles that do not have that many latent values (e.g. a branch was
        not taken) are excluded, with their weight renormalised over the rest.
        """
        pairs = [
            (float(s.latent_values[index]), s.log_weight)
            for s in self.samples
            if len(s.latent_values) > index
            and isinstance(s.latent_values[index], (int, float))
        ]
        if not pairs:
            raise InferenceError(f"no particle has a latent value at index {index}")
        values, log_weights = zip(*pairs)
        weights = normalize_log_weights(list(log_weights))
        return float(np.dot(np.asarray(values), weights))

    def resample(self, rng: Optional[np.random.Generator] = None, size: Optional[int] = None) -> List[ImportanceSample]:
        """Multinomial resampling according to the normalised weights."""
        rng = ensure_rng(rng)
        size = size if size is not None else self.num_samples
        weights = self.normalized_weights()
        indices = rng.choice(self.num_samples, size=size, p=weights)
        return [self.samples[i] for i in indices]


def importance_sampling(
    model_program: ast.Program,
    guide_program: ast.Program,
    model_entry: str,
    guide_entry: str,
    obs_trace: Optional[Sequence[tr.Message]],
    num_samples: int,
    rng: Optional[np.random.Generator] = None,
    model_args: Tuple[object, ...] = (),
    guide_args: Tuple[object, ...] = (),
    latent_channel: str = "latent",
    obs_channel: str = "obs",
    raise_on_all_zero: bool = True,
) -> ImportanceResult:
    """Run ``num_samples`` importance-sampling particles.

    Parameters mirror :func:`repro.core.coroutines.run_model_guide`.  When
    every particle has zero weight (the guide never proposes a trace the
    model can accept) an :class:`InferenceError` is raised unless
    ``raise_on_all_zero`` is False; unsound guides typically manifest this
    way at run time, which is exactly the failure mode guide types rule out
    statically.
    """
    if num_samples <= 0:
        raise InferenceError("num_samples must be positive")
    rng = ensure_rng(rng)

    samples: List[ImportanceSample] = []
    for _ in range(num_samples):
        joint = run_model_guide(
            model_program,
            guide_program,
            model_entry,
            guide_entry,
            obs_trace=obs_trace,
            rng=rng,
            model_args=model_args,
            guide_args=guide_args,
            latent_channel=latent_channel,
            obs_channel=obs_channel,
        )
        model_lw = joint.log_weights["model"]
        guide_lw = joint.log_weights["guide"]
        if guide_lw == -math.inf:
            log_weight = -math.inf
        else:
            log_weight = model_lw - guide_lw
        samples.append(
            ImportanceSample(
                latent_trace=joint.traces[latent_channel],
                log_weight=log_weight,
                model_log_weight=model_lw,
                guide_log_weight=guide_lw,
                model_value=joint.values["model"],
                guide_value=joint.values["guide"],
            )
        )

    result = ImportanceResult(samples)
    if raise_on_all_zero and all(lw == -math.inf for lw in result.log_weights):
        raise InferenceError(
            "all importance weights are zero: the guide's proposals never land "
            "in the model's support (the model/guide pair is not absolutely continuous)"
        )
    return result
