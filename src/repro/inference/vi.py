"""Variational inference: ELBO estimation and a derivative-free optimiser.

The guide is a *parameterised family*: a function from a real parameter
vector θ to a (program, entry, args) triple.  For each θ, the ELBO

    ELBO(θ) = E_{σℓ ~ guide_θ} [ log w_m(σℓ, σo) − log w_g(σℓ; θ) ]

is estimated by jointly executing the guide and the conditioned model
(paper Sec. 5.2, the VI rule); the KL divergence being minimised is
``log p(σo) − ELBO(θ)``, which is well-defined exactly when the guide is
absolutely continuous with respect to the posterior — the property that
guide types certify (Thm. 5.2).

Because the substrate is pure numpy (no autograd), the optimiser ascends
the ELBO with central finite-difference gradients over a common-random-
numbers estimator, which is adequate for the small parameter vectors used
by the paper's benchmarks (2–8 parameters).  This sequential path is kept
as the ``svi-fd`` reference engine; the production path is the batched
score-function optimiser on the lockstep particle runtime
(:mod:`repro.engine.svi`, engine name ``svi``), which replaces the
``2·dim + 1`` sequential ELBO sweeps per step with one vectorized sampling
pass plus two vectorized rescoring passes per parameter coordinate.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, List, Optional, Sequence, Tuple

import numpy as np

if TYPE_CHECKING:  # pragma: no cover - annotation-only dependency
    from repro.minipyro.infer.optim import Optimizer

from repro.core import ast
from repro.core.coroutines import run_model_guide
from repro.core.semantics import traces as tr
from repro.errors import InferenceError
from repro.utils.rng import ensure_rng

#: A guide family: θ ↦ (guide program, entry procedure, argument tuple).
GuideFamily = Callable[[np.ndarray], Tuple[ast.Program, str, Tuple[object, ...]]]


@dataclass(frozen=True)
class ELBOEstimate:
    """A Monte-Carlo ELBO estimate and its per-particle terms."""

    value: float
    particle_terms: Tuple[float, ...]

    @property
    def num_particles(self) -> int:
        return len(self.particle_terms)

    @property
    def standard_error(self) -> float:
        if len(self.particle_terms) < 2:
            return math.inf
        return float(np.std(self.particle_terms, ddof=1) / math.sqrt(len(self.particle_terms)))


@dataclass
class SVIResult:
    """The output of stochastic variational inference."""

    theta: np.ndarray
    elbo_history: List[float] = field(default_factory=list)
    theta_history: List[np.ndarray] = field(default_factory=list)

    @property
    def num_steps(self) -> int:
        return len(self.elbo_history)

    @property
    def final_elbo(self) -> float:
        if not self.elbo_history:
            raise InferenceError("SVI has not taken any steps")
        return self.elbo_history[-1]


def estimate_elbo(
    model_program: ast.Program,
    guide_family: GuideFamily,
    theta: np.ndarray,
    model_entry: str,
    obs_trace: Optional[Sequence[tr.Message]],
    num_particles: int,
    rng: Optional[np.random.Generator] = None,
    model_args: Tuple[object, ...] = (),
    latent_channel: str = "latent",
    obs_channel: str = "obs",
) -> ELBOEstimate:
    """Monte-Carlo estimate of the ELBO at parameter vector ``theta``."""
    if num_particles <= 0:
        raise InferenceError("num_particles must be positive")
    rng = ensure_rng(rng)
    guide_program, guide_entry, guide_args = guide_family(np.asarray(theta, dtype=float))

    terms: List[float] = []
    for _ in range(num_particles):
        joint = run_model_guide(
            model_program,
            guide_program,
            model_entry,
            guide_entry,
            obs_trace=obs_trace,
            rng=rng,
            model_args=model_args,
            guide_args=guide_args,
            latent_channel=latent_channel,
            obs_channel=obs_channel,
        )
        log_w_m = joint.log_weights["model"]
        log_w_g = joint.log_weights["guide"]
        if log_w_m == -math.inf:
            # The guide proposed a trace outside the model's support: the KL
            # divergence is infinite (absolute continuity fails for this θ).
            terms.append(-math.inf)
        else:
            terms.append(log_w_m - log_w_g)

    finite = [t for t in terms if t > -math.inf]
    value = float(np.mean(finite)) if finite else -math.inf
    if len(finite) < len(terms):
        value = -math.inf
    return ELBOEstimate(value=value, particle_terms=tuple(terms))


def svi(
    model_program: ast.Program,
    guide_family: GuideFamily,
    theta0: Sequence[float],
    model_entry: str,
    obs_trace: Optional[Sequence[tr.Message]],
    num_steps: int,
    num_particles: int = 8,
    learning_rate: float = 0.05,
    fd_epsilon: float = 1e-3,
    rng: Optional[np.random.Generator] = None,
    model_args: Tuple[object, ...] = (),
    theta_projection: Optional[Callable[[np.ndarray], np.ndarray]] = None,
    latent_channel: str = "latent",
    obs_channel: str = "obs",
    optimizer: Optional["Optimizer"] = None,
) -> SVIResult:
    """Maximise the ELBO by finite-difference gradient ascent.

    Parameters
    ----------
    theta0:
        Initial parameter vector.
    num_steps:
        Number of gradient steps.
    num_particles:
        Particles per ELBO evaluation.
    learning_rate:
        Step size for plain gradient ascent (with a 1/sqrt(t) decay).
        Ignored when ``optimizer`` is given.
    fd_epsilon:
        Central-difference perturbation size.
    optimizer:
        Optional :class:`repro.minipyro.infer.optim.Optimizer` (Adam/SGD)
        applied to the finite-difference gradient, so the ``svi-fd`` engine
        honours the same optimiser choice as the vectorized ``svi`` engine.
        Defaults to plain gradient ascent with a 1/sqrt(t) decayed step.
    theta_projection:
        Optional projection applied after each step (e.g. clamp a scale
        parameter to stay positive).  Defaults to the identity.  Prefer the
        constraint transforms of :class:`repro.engine.params.ParamStore`
        (used by the ``svi``/``svi-fd`` engines) for new code — they
        reparameterise instead of clamping, so the optimiser never sees the
        constraint boundary.
    """
    rng = ensure_rng(rng)
    theta = np.asarray(list(theta0), dtype=float)
    projection = theta_projection if theta_projection is not None else (lambda t: t)
    theta = projection(theta)

    result = SVIResult(theta=theta.copy())

    def elbo_at(point: np.ndarray, seed: int) -> float:
        # Common random numbers: reuse the same seed for all perturbations of
        # one step so finite differences measure the effect of θ, not noise.
        local_rng = np.random.default_rng(seed)
        return estimate_elbo(
            model_program,
            guide_family,
            point,
            model_entry,
            obs_trace,
            num_particles,
            rng=local_rng,
            model_args=model_args,
            latent_channel=latent_channel,
            obs_channel=obs_channel,
        ).value

    for step in range(num_steps):
        seed = int(rng.integers(0, 2**31 - 1))
        base = elbo_at(theta, seed)
        if not math.isfinite(base):
            # The guide left the model's support (or the estimate degenerated
            # to nan) at this θ: finite differences around a non-finite base
            # measure nothing, so record the failure and keep θ fixed instead
            # of taking an unclamped step on a garbage gradient.
            result.elbo_history.append(base)
            result.theta_history.append(theta.copy())
            continue
        gradient = np.zeros_like(theta)
        for i in range(theta.size):
            bump = np.zeros_like(theta)
            bump[i] = fd_epsilon
            plus = elbo_at(projection(theta + bump), seed)
            minus = elbo_at(projection(theta - bump), seed)
            if not (math.isfinite(plus) and math.isfinite(minus)):
                gradient[i] = 0.0
            else:
                gradient[i] = (plus - minus) / (2.0 * fd_epsilon)

        norm = float(np.linalg.norm(gradient))
        if norm > 10.0:
            gradient = gradient * (10.0 / norm)
        if optimizer is not None:
            params = {"theta": theta.copy()}
            optimizer.update(params, {"theta": gradient})
            theta = projection(np.asarray(params["theta"], dtype=float))
        else:
            step_size = learning_rate / math.sqrt(1.0 + step)
            theta = projection(theta + step_size * gradient)

        result.elbo_history.append(base)
        result.theta_history.append(theta.copy())

    result.theta = theta
    return result
