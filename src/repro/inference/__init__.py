"""Inference engines operating directly on the coroutine-based core calculus.

These implement the operational rules of paper Sec. 5.2:

``importance``
    Self-normalised importance sampling with a guide program as the proposal.
``mcmc``
    Metropolis–Hastings with a (possibly trace-dependent) proposal program.
``vi``
    Variational inference: ELBO estimation over a parameterised guide and a
    derivative-free / finite-difference optimiser.
``diagnostics``
    Posterior summaries shared by the engines (weighted histograms, ESS,
    running means).
"""

from repro.inference.importance import ImportanceResult, ImportanceSample, importance_sampling
from repro.inference.mcmc import MHResult, metropolis_hastings
from repro.inference.vi import ELBOEstimate, SVIResult, estimate_elbo, svi
from repro.inference.diagnostics import (
    posterior_histogram,
    posterior_mean,
    weight_diagnostics,
)

__all__ = [
    "ImportanceSample",
    "ImportanceResult",
    "importance_sampling",
    "MHResult",
    "metropolis_hastings",
    "ELBOEstimate",
    "SVIResult",
    "estimate_elbo",
    "svi",
    "posterior_histogram",
    "posterior_mean",
    "weight_diagnostics",
]
