"""Metropolis–Hastings MCMC with proposal programs (paper Sec. 5.2).

One MH step, given a proposal program ``g``, a model ``m_m``, an observation
trace ``σo``, and the current latent trace ``σℓ``:

1. jointly execute ``g`` (seeded with the old trace) and the conditioned
   model to draw a new latent trace ``σ'ℓ`` with forward density ``w_fwd``
   and model density ``w'_m``;
2. evaluate the proposal *backwards* — the density of proposing the old
   trace from the new one — giving ``w_bwd``, and the model on the old trace
   giving ``w_m``;
3. accept ``σ'ℓ`` with probability ``min(1, (w'_m · w_bwd) / (w_m · w_fwd))``.

Proposal programs are ordinary guide programs; dependence on the previous
sample is passed through the procedure's parameters via ``proposal_args``
(a function from the previous latent trace to the argument tuple), mirroring
the paper's treatment of traces as first-class proposal inputs.  The default
``proposal_args`` ignores the old trace (independence MH).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence, Tuple

import numpy as np

from repro.core import ast
from repro.core.coroutines import run_model_guide, run_prior
from repro.core.semantics import traces as tr
from repro.core.semantics.evaluate import log_density
from repro.errors import InferenceError
from repro.utils.rng import ensure_rng

#: Maps the previous latent trace to the proposal procedure's argument tuple.
ProposalArgs = Callable[[tr.Trace], Tuple[object, ...]]


def independence_proposal(args: Tuple[object, ...] = ()) -> ProposalArgs:
    """A proposal-argument function that ignores the previous latent trace.

    The returned function is marked ``trace_independent``, which lets chain
    initialisation skip the prior simulation it otherwise runs to seed
    trace-dependent proposals.
    """

    def proposal(_old: tr.Trace) -> Tuple[object, ...]:
        return args

    proposal.trace_independent = True  # type: ignore[attr-defined]
    return proposal


_independence_proposal = independence_proposal()


@dataclass
class MHResult:
    """The output of a Metropolis–Hastings run."""

    traces: List[tr.Trace]
    accepted: List[bool]
    model_log_weights: List[float]

    @property
    def num_samples(self) -> int:
        return len(self.traces)

    @property
    def acceptance_rate(self) -> float:
        if not self.accepted:
            return 0.0
        return sum(self.accepted) / len(self.accepted)

    def site_values(self, index: int) -> List[float]:
        """Values of the ``index``-th latent sample site across the chain.

        Iterations whose trace does not reach that site are skipped.
        """
        values: List[float] = []
        for trace in self.traces:
            samples = tr.sample_values(trace)
            if len(samples) > index and isinstance(samples[index], (int, float)):
                values.append(float(samples[index]))
        return values

    def posterior_mean(self, index: int, burn_in: int = 0) -> float:
        values = []
        for trace in self.traces[burn_in:]:
            samples = tr.sample_values(trace)
            if len(samples) > index and isinstance(samples[index], (int, float)):
                values.append(float(samples[index]))
        if not values:
            raise InferenceError(f"no chain state has a latent value at index {index}")
        return float(np.mean(values))


@dataclass
class _MHState:
    latent: tr.Trace
    model_log_weight: float


def _model_traces(
    model_program: ast.Program,
    model_entry: str,
    latent_trace: tr.Trace,
    obs_trace: Optional[Sequence[tr.Message]],
    latent_channel: str,
    obs_channel: str,
) -> dict:
    traces = {latent_channel: latent_trace}
    model_proc = model_program.procedure(model_entry)
    if model_proc.provides == obs_channel and obs_trace is not None:
        traces[obs_channel] = tuple(obs_trace)
    return traces


def metropolis_hastings(
    model_program: ast.Program,
    proposal_program: ast.Program,
    model_entry: str,
    proposal_entry: str,
    obs_trace: Optional[Sequence[tr.Message]],
    num_samples: int,
    rng: Optional[np.random.Generator] = None,
    proposal_args: ProposalArgs = _independence_proposal,
    model_args: Tuple[object, ...] = (),
    initial_trace: Optional[tr.Trace] = None,
    burn_in: int = 0,
    latent_channel: str = "latent",
    obs_channel: str = "obs",
    max_init_attempts: int = 100,
) -> MHResult:
    """Run a Metropolis–Hastings chain of length ``num_samples`` (after burn-in)."""
    if num_samples <= 0:
        raise InferenceError("num_samples must be positive")
    rng = ensure_rng(rng)

    state = _initial_state(
        model_program,
        proposal_program,
        model_entry,
        proposal_entry,
        obs_trace,
        rng,
        proposal_args,
        model_args,
        initial_trace,
        latent_channel,
        obs_channel,
        max_init_attempts,
    )

    kept_traces: List[tr.Trace] = []
    accepted_flags: List[bool] = []
    kept_weights: List[float] = []

    total_iterations = burn_in + num_samples
    for iteration in range(total_iterations):
        # Forward move: propose a new latent trace from the current one.
        joint = run_model_guide(
            model_program,
            proposal_program,
            model_entry,
            proposal_entry,
            obs_trace=obs_trace,
            rng=rng,
            model_args=model_args,
            guide_args=proposal_args(state.latent),
            latent_channel=latent_channel,
            obs_channel=obs_channel,
        )
        new_latent = joint.traces[latent_channel]
        log_w_fwd = joint.log_weights["guide"]
        log_w_m_new = joint.log_weights["model"]

        # Backward density: proposing the old trace when starting from the new one.
        log_w_bwd = log_density(
            proposal_program,
            proposal_entry,
            {latent_channel: state.latent},
            args=proposal_args(new_latent),
        )

        log_alpha = (log_w_m_new + log_w_bwd) - (state.model_log_weight + log_w_fwd)
        accept = False
        if log_w_m_new > -math.inf and log_w_bwd > -math.inf:
            accept = math.log(rng.random()) < min(0.0, log_alpha)
        if accept:
            state = _MHState(latent=new_latent, model_log_weight=log_w_m_new)

        if iteration >= burn_in:
            kept_traces.append(state.latent)
            accepted_flags.append(accept)
            kept_weights.append(state.model_log_weight)

    return MHResult(
        traces=kept_traces, accepted=accepted_flags, model_log_weights=kept_weights
    )


def _initial_state(
    model_program: ast.Program,
    proposal_program: ast.Program,
    model_entry: str,
    proposal_entry: str,
    obs_trace: Optional[Sequence[tr.Message]],
    rng: np.random.Generator,
    proposal_args: ProposalArgs,
    model_args: Tuple[object, ...],
    initial_trace: Optional[tr.Trace],
    latent_channel: str,
    obs_channel: str,
    max_init_attempts: int,
) -> _MHState:
    """Find a starting state with non-zero model density."""
    if initial_trace is not None:
        model_lw = log_density(
            model_program,
            model_entry,
            _model_traces(
                model_program, model_entry, initial_trace, obs_trace, latent_channel, obs_channel
            ),
            args=model_args,
        )
        if model_lw == -math.inf:
            raise InferenceError("the supplied initial trace has zero model density")
        return _MHState(latent=initial_trace, model_log_weight=model_lw)

    for _ in range(max_init_attempts):
        # Trace-dependent proposals receive a genuine previous trace even on
        # the very first step: seed each attempt with a fresh prior draw
        # rather than handing ``proposal_args`` an empty trace it may not be
        # prepared to index into.  Independence proposals ignore the trace,
        # so skip the prior simulation (and its RNG draws) on that path.
        if getattr(proposal_args, "trace_independent", False):
            previous: tr.Trace = ()
        else:
            previous = prior_initial_trace(
                model_program,
                model_entry,
                rng=rng,
                model_args=model_args,
                latent_channel=latent_channel,
            )
        joint = run_model_guide(
            model_program,
            proposal_program,
            model_entry,
            proposal_entry,
            obs_trace=obs_trace,
            rng=rng,
            model_args=model_args,
            guide_args=proposal_args(previous),
            latent_channel=latent_channel,
            obs_channel=obs_channel,
        )
        if joint.log_weights["model"] > -math.inf:
            return _MHState(
                latent=joint.traces[latent_channel],
                model_log_weight=joint.log_weights["model"],
            )
    raise InferenceError(
        f"could not initialise the Markov chain after {max_init_attempts} attempts: "
        "every proposed trace has zero model density"
    )


def prior_initial_trace(
    model_program: ast.Program,
    model_entry: str,
    rng: Optional[np.random.Generator] = None,
    model_args: Tuple[object, ...] = (),
    latent_channel: str = "latent",
) -> tr.Trace:
    """Draw an initial latent trace by simulating the model's prior."""
    joint = run_prior(model_program, model_entry, rng=ensure_rng(rng), model_args=model_args)
    return joint.traces[latent_channel]
