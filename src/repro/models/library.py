"""The benchmark programs of the paper's evaluation, in our surface syntax.

Each :class:`Benchmark` bundles a model program, a guide program, observation
data, the inference algorithm the paper runs on it (Table 2), and the
paper-reported expressiveness/size numbers (Table 1) so the benchmark
harness can print paper-vs-measured comparisons.

The benchmark set mirrors Table 1's selected rows:

========== =============================================== ==== ===== ====
name        description                                     T?   LOC   TP?
========== =============================================== ==== ===== ====
lr          Bayesian linear regression                      ✓    16    ✓
gmm         Gaussian mixture model                          ✓    44    ✓
kalman      Kalman smoother                                 ✓    32    ✓
sprinkler   Bayesian network                                ✓    22    ✓
hmm         Hidden Markov model                             ✓    31    ✓
branching   random control flow                             ✓    19    ✗
marsaglia   Marsaglia algorithm                             ✓    22    ✗
dp          Dirichlet process (stochastic memoization)      ✗    N/A   ✗
ptrace      Poisson trace (Knuth)                           ✓    11    ✗
aircraft    aircraft detection                              ✓    32    ✓
weight      unreliable weigh                                ✓    8     ✓
vae         variational autoencoder                         ✓    26    ✓
ex-1        Fig. 5 (conditional model/guide pair)           ✓    13    ✗
ex-2        Fig. 6 (recursive PCFG)                         ✓    21    ✗
gp-dsl      Gaussian-process kernel DSL                     ✓    58    ✗
========== =============================================== ==== ===== ====

plus five extra synthetic models (``outliers``, ``coin``, ``randomwalk``,
``burglary``, ``seasonal``) in the spirit of the paper's "6 new benchmarks".
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.core.ast import Program
from repro.core.parser import parse_program


def source_loc(source: Optional[str]) -> int:
    """Non-blank, non-comment lines of surface-syntax source (Table 1's LOC)."""
    if not source:
        return 0
    count = 0
    for line in source.splitlines():
        stripped = line.strip()
        if stripped and not stripped.startswith("#") and not stripped.startswith("//"):
            count += 1
    return count


@dataclass
class PaperTable1Row:
    """Paper-reported Table 1 entries for one benchmark."""

    typechecks_ours: bool
    loc: Optional[int]
    typechecks_prior: bool


@dataclass
class PaperTable2Row:
    """Paper-reported Table 2 entries for one benchmark (None if absent)."""

    algorithm: str
    codegen_ms: float
    generated_loc: int
    generated_inference_s: float
    handwritten_loc: int
    handwritten_inference_s: float


@dataclass
class Benchmark:
    """One benchmark program with its guide, data, and paper-reported numbers."""

    name: str
    description: str
    model_source: Optional[str]
    model_entry: Optional[str]
    guide_source: Optional[str] = None
    guide_entry: Optional[str] = None
    inference: Optional[str] = None  # "IS", "VI", "MCMC", or None
    obs_values: Tuple[object, ...] = ()
    model_args: Tuple[object, ...] = ()
    guide_param_inits: Dict[str, float] = field(default_factory=dict)
    expressible: bool = True
    selected: bool = True
    recursive: bool = False
    branch_dependent: bool = False
    paper_table1: Optional[PaperTable1Row] = None
    paper_table2: Optional[PaperTable2Row] = None
    notes: str = ""

    def model_program(self) -> Program:
        if self.model_source is None:
            raise ValueError(f"benchmark {self.name!r} has no model program")
        return parse_program(self.model_source)

    def guide_program(self) -> Program:
        if self.guide_source is None:
            raise ValueError(f"benchmark {self.name!r} has no guide program")
        return parse_program(self.guide_source)

    @property
    def model_loc(self) -> int:
        return source_loc(self.model_source)

    @property
    def guide_loc(self) -> int:
        return source_loc(self.guide_source)


# ---------------------------------------------------------------------------
# Model and guide sources
# ---------------------------------------------------------------------------

_LR_MODEL = """
proc LinReg() consume latent provide obs {
  slope <- sample.recv{latent}(Normal(0.0, 10.0));
  intercept <- sample.recv{latent}(Normal(0.0, 10.0));
  noise <- sample.recv{latent}(Gamma(1.0, 1.0));
  _ <- sample.send{obs}(Normal(slope * 1.0 + intercept, noise));
  _ <- sample.send{obs}(Normal(slope * 2.0 + intercept, noise));
  _ <- sample.send{obs}(Normal(slope * 3.0 + intercept, noise));
  _ <- sample.send{obs}(Normal(slope * 4.0 + intercept, noise));
  _ <- sample.send{obs}(Normal(slope * 5.0 + intercept, noise));
  return(slope)
}
"""

_LR_GUIDE = """
proc LinRegGuide() provide latent {
  slope <- sample.send{latent}(Normal(1.0, 2.0));
  intercept <- sample.send{latent}(Normal(0.0, 2.0));
  noise <- sample.send{latent}(Gamma(2.0, 2.0));
  return(slope)
}
"""

_GMM_MODEL = """
proc Gmm() consume latent provide obs {
  mu1 <- sample.recv{latent}(Normal(-2.0, 5.0));
  mu2 <- sample.recv{latent}(Normal(2.0, 5.0));
  z1 <- sample.recv{latent}(Ber(0.5));
  _ <- sample.send{obs}(Normal(if z1 then mu1 else mu2, 1.0));
  z2 <- sample.recv{latent}(Ber(0.5));
  _ <- sample.send{obs}(Normal(if z2 then mu1 else mu2, 1.0));
  z3 <- sample.recv{latent}(Ber(0.5));
  _ <- sample.send{obs}(Normal(if z3 then mu1 else mu2, 1.0));
  z4 <- sample.recv{latent}(Ber(0.5));
  _ <- sample.send{obs}(Normal(if z4 then mu1 else mu2, 1.0));
  return(mu1)
}
"""

_GMM_GUIDE = """
proc GmmGuide() provide latent {
  mu1 <- sample.send{latent}(Normal(-2.0, 3.0));
  mu2 <- sample.send{latent}(Normal(2.0, 3.0));
  z1 <- sample.send{latent}(Ber(0.5));
  z2 <- sample.send{latent}(Ber(0.5));
  z3 <- sample.send{latent}(Ber(0.5));
  z4 <- sample.send{latent}(Ber(0.5));
  return(mu1)
}
"""

_KALMAN_MODEL = """
proc Kalman() consume latent provide obs {
  x1 <- sample.recv{latent}(Normal(0.0, 1.0));
  _ <- sample.send{obs}(Normal(x1, 0.5));
  x2 <- sample.recv{latent}(Normal(x1, 1.0));
  _ <- sample.send{obs}(Normal(x2, 0.5));
  x3 <- sample.recv{latent}(Normal(x2, 1.0));
  _ <- sample.send{obs}(Normal(x3, 0.5));
  x4 <- sample.recv{latent}(Normal(x3, 1.0));
  _ <- sample.send{obs}(Normal(x4, 0.5));
  return(x4)
}
"""

_KALMAN_GUIDE = """
proc KalmanGuide() provide latent {
  x1 <- sample.send{latent}(Normal(0.5, 1.0));
  x2 <- sample.send{latent}(Normal(x1, 1.0));
  x3 <- sample.send{latent}(Normal(x2, 1.0));
  x4 <- sample.send{latent}(Normal(x3, 1.0));
  return(x4)
}
"""

_SPRINKLER_MODEL = """
proc Sprinkler() consume latent provide obs {
  rain <- sample.recv{latent}(Ber(0.2));
  sprinkler <- sample.recv{latent}(Ber(if rain then 0.01 else 0.4));
  _ <- sample.send{obs}(Ber(if rain then (if sprinkler then 0.99 else 0.8)
                            else (if sprinkler then 0.9 else 0.05)));
  return(rain)
}
"""

_SPRINKLER_GUIDE = """
proc SprinklerGuide() provide latent {
  rain <- sample.send{latent}(Ber(0.3));
  sprinkler <- sample.send{latent}(Ber(if rain then 0.05 else 0.5));
  return(rain)
}
"""

_HMM_MODEL = """
proc Hmm() consume latent provide obs {
  s1 <- sample.recv{latent}(Ber(0.5));
  _ <- sample.send{obs}(Normal(if s1 then 1.0 else -1.0, 1.0));
  s2 <- sample.recv{latent}(Ber(if s1 then 0.7 else 0.3));
  _ <- sample.send{obs}(Normal(if s2 then 1.0 else -1.0, 1.0));
  s3 <- sample.recv{latent}(Ber(if s2 then 0.7 else 0.3));
  _ <- sample.send{obs}(Normal(if s3 then 1.0 else -1.0, 1.0));
  s4 <- sample.recv{latent}(Ber(if s3 then 0.7 else 0.3));
  _ <- sample.send{obs}(Normal(if s4 then 1.0 else -1.0, 1.0));
  return(s4)
}
"""

_HMM_GUIDE = """
proc HmmGuide() provide latent {
  s1 <- sample.send{latent}(Ber(0.6));
  s2 <- sample.send{latent}(Ber(if s1 then 0.7 else 0.3));
  s3 <- sample.send{latent}(Ber(if s2 then 0.7 else 0.3));
  s4 <- sample.send{latent}(Ber(if s3 then 0.7 else 0.3));
  return(s4)
}
"""

_BRANCHING_MODEL = """
proc Branching() consume latent provide obs {
  r <- sample.recv{latent}(Pois(4.0));
  if.send{latent} r < 4 {
    _ <- sample.send{obs}(Pois(6.0));
    return(r)
  } else {
    m <- sample.recv{latent}(Unif);
    _ <- sample.send{obs}(Pois(6.0 + 10.0 * m));
    return(r)
  }
}
"""

_BRANCHING_GUIDE = """
proc BranchingGuide() provide latent {
  r <- sample.send{latent}(Pois(3.0));
  if.recv{latent} {
    return(r)
  } else {
    m <- sample.send{latent}(Beta(2.0, 2.0));
    return(r)
  }
}
"""

_MARSAGLIA_MODEL = """
proc Marsaglia() consume latent provide obs {
  z <- call MarsagliaHelper();
  _ <- sample.send{obs}(Normal(1.0 + 2.0 * z, 0.5));
  return(z)
}

proc MarsagliaHelper() consume latent {
  u1 <- sample.recv{latent}(Unif);
  u2 <- sample.recv{latent}(Unif);
  if.send{latent} u1 * u1 + u2 * u2 < 1.0 {
    return((2.0 * u1 - 1.0) * sqrt(log(u1 * u1 + u2 * u2) * -2.0))
  } else {
    call MarsagliaHelper()
  }
}
"""

_MARSAGLIA_GUIDE = """
proc MarsagliaGuide() provide latent {
  call MarsagliaGuideHelper()
}

proc MarsagliaGuideHelper() provide latent {
  u1 <- sample.send{latent}(Unif);
  u2 <- sample.send{latent}(Unif);
  if.recv{latent} {
    return(u1)
  } else {
    call MarsagliaGuideHelper()
  }
}
"""

_PTRACE_MODEL = """
proc Ptrace() consume latent provide obs {
  k <- call PtraceHelper(exp(-4.0), 0, 1.0);
  _ <- sample.send{obs}(Normal(k, 0.1));
  return(k)
}

proc PtraceHelper(l: preal, k: nat, p: preal) consume latent {
  u <- sample.recv{latent}(Unif);
  if.send{latent} p * u <= l {
    return(k)
  } else {
    call PtraceHelper(l, k + 1, p * u)
  }
}
"""

_PTRACE_GUIDE = """
proc PtraceGuide() provide latent {
  call PtraceGuideHelper()
}

proc PtraceGuideHelper() provide latent {
  u <- sample.send{latent}(Unif);
  if.recv{latent} {
    return(u)
  } else {
    call PtraceGuideHelper()
  }
}
"""

_AIRCRAFT_MODEL = """
proc Aircraft() consume latent provide obs {
  position1 <- sample.recv{latent}(Normal(0.0, 5.0));
  position2 <- sample.recv{latent}(Normal(0.0, 5.0));
  detect_rate <- sample.recv{latent}(Beta(5.0, 2.0));
  _ <- sample.send{obs}(Normal(position1, 1.0));
  _ <- sample.send{obs}(Normal(position2, 1.0));
  _ <- sample.send{obs}(Ber(detect_rate));
  return(position1)
}
"""

_AIRCRAFT_GUIDE = """
proc AircraftGuide() provide latent {
  position1 <- sample.send{latent}(Normal(-1.0, 2.0));
  position2 <- sample.send{latent}(Normal(3.0, 2.0));
  detect_rate <- sample.send{latent}(Beta(4.0, 2.0));
  return(position1)
}
"""

_WEIGHT_MODEL = """
proc Weigh() consume latent provide obs {
  weight <- sample.recv{latent}(Normal(8.5, 1.0));
  _ <- sample.send{obs}(Normal(weight, 0.75));
  return(weight)
}
"""

_WEIGHT_GUIDE = """
proc WeighGuide(loc: real, log_scale: real) provide latent {
  weight <- sample.send{latent}(Normal(loc, exp(log_scale)));
  return(weight)
}
"""

_VAE_MODEL = """
proc Vae() consume latent provide obs {
  z1 <- sample.recv{latent}(Normal(0.0, 1.0));
  z2 <- sample.recv{latent}(Normal(0.0, 1.0));
  _ <- sample.send{obs}(Normal(0.9 * z1 + 0.1 * z2 + 0.2, 0.5));
  _ <- sample.send{obs}(Normal(0.4 * z1 - 0.6 * z2 - 0.1, 0.5));
  _ <- sample.send{obs}(Normal(-0.7 * z1 + 0.8 * z2 + 0.3, 0.5));
  _ <- sample.send{obs}(Normal(0.2 * z1 + 0.5 * z2 - 0.4, 0.5));
  return(z1)
}
"""

_VAE_GUIDE = """
proc VaeGuide(m1: real, s1: real, m2: real, s2: real) provide latent {
  z1 <- sample.send{latent}(Normal(m1, exp(s1)));
  z2 <- sample.send{latent}(Normal(m2, exp(s2)));
  return(z1)
}
"""

_EX1_MODEL = """
proc Model() consume latent provide obs {
  v <- sample.recv{latent}(Gamma(2.0, 1.0));
  if.send{latent} v < 2.0 {
    _ <- sample.send{obs}(Normal(-1.0, 1.0));
    return(v)
  } else {
    m <- sample.recv{latent}(Beta(3.0, 1.0));
    _ <- sample.send{obs}(Normal(m, 1.0));
    return(v)
  }
}
"""

_EX1_GUIDE = """
proc Guide1() provide latent {
  v <- sample.send{latent}(Gamma(1.0, 1.0));
  if.recv{latent} {
    return(v)
  } else {
    m <- sample.send{latent}(Unif);
    return(v)
  }
}
"""

# Unsound variants of the Fig. 3 / Fig. 4 guides, used by the soundness
# ablation (E6): Guide1' samples @x from a Poisson and branches on a
# different predicate; Guide2' samples @x from a Normal (wrong support).
_EX1_GUIDE_UNSOUND_IS = """
proc Guide1Bad() provide latent {
  v <- sample.send{latent}(Pois(4.0));
  if.recv{latent} {
    return(v)
  } else {
    m <- sample.send{latent}(Unif);
    return(v)
  }
}
"""

_EX1_GUIDE_UNSOUND_VI = """
proc Guide2Bad(t1: real, t2: real) provide latent {
  v <- sample.send{latent}(Normal(t1, exp(t2)));
  if.recv{latent} {
    return(v)
  } else {
    m <- sample.send{latent}(Unif);
    return(v)
  }
}
"""

_EX1_GUIDE_VI = """
proc Guide2(t1: real, t2: real, t3: real, t4: real) provide latent {
  v <- sample.send{latent}(Gamma(exp(t1), exp(t2)));
  if.recv{latent} {
    return(v)
  } else {
    m <- sample.send{latent}(Beta(exp(t3), exp(t4)));
    return(v)
  }
}
"""

_EX2_MODEL = """
proc Pcfg() consume latent {
  k <- sample.recv{latent}(Beta(3.0, 1.0));
  call PcfgGen(k)
}

proc PcfgGen(k: ureal) consume latent {
  u <- sample.recv{latent}(Unif);
  if.send{latent} u < k {
    v <- sample.recv{latent}(Normal(0.0, 1.0));
    return(v)
  } else {
    lhs <- call PcfgGen(k);
    rhs <- call PcfgGen(k);
    return(lhs + rhs)
  }
}
"""

_EX2_GUIDE = """
proc PcfgGuide() provide latent {
  k <- sample.send{latent}(Beta(2.0, 2.0));
  call PcfgGenGuide(k)
}

proc PcfgGenGuide(k: ureal) provide latent {
  u <- sample.send{latent}(Unif);
  if.recv{latent} {
    v <- sample.send{latent}(Normal(0.0, 2.0));
    return(v)
  } else {
    lhs <- call PcfgGenGuide(k);
    rhs <- call PcfgGenGuide(k);
    return(lhs + rhs)
  }
}
"""

_GPDSL_MODEL = """
proc GpDsl() consume latent provide obs {
  k <- call KernelGen();
  _ <- sample.send{obs}(Normal(k, 1.0));
  return(k)
}

proc KernelGen() consume latent {
  is_leaf <- sample.recv{latent}(Ber(0.6));
  if.send{latent} is_leaf {
    lengthscale <- sample.recv{latent}(Gamma(2.0, 2.0));
    return(lengthscale)
  } else {
    left <- call KernelGen();
    right <- call KernelGen();
    return(left + right)
  }
}
"""

_GPDSL_GUIDE = """
proc GpDslGuide() provide latent {
  call KernelGenGuide()
}

proc KernelGenGuide() provide latent {
  is_leaf <- sample.send{latent}(Ber(0.7));
  if.recv{latent} {
    lengthscale <- sample.send{latent}(Gamma(2.0, 1.0));
    return(lengthscale)
  } else {
    left <- call KernelGenGuide();
    right <- call KernelGenGuide();
    return(left + right)
  }
}
"""

# ---- extra (non-selected) benchmarks ---------------------------------------

_OUTLIERS_MODEL = """
proc Outliers() consume latent provide obs {
  prob_outlier <- sample.recv{latent}(Unif);
  is_outlier <- sample.recv{latent}(Ber(prob_outlier));
  _ <- sample.send{obs}(Normal(if is_outlier then 0.0 else 2.5,
                               if is_outlier then 10.0 else 0.5));
  return(is_outlier)
}
"""

# The MCMC guide of Sec. 2.2: it branches on the *old* value of is_outlier
# (passed as a parameter), proposing its negation with a small amount of
# noise, while following the same latent protocol as the model.
_OUTLIERS_GUIDE = """
proc OutliersGuide(old_is_outlier: bool) provide latent {
  prob_outlier <- sample.send{latent}(Beta(2.0, 5.0));
  if old_is_outlier {
    is_outlier <- sample.send{latent}(Ber(0.1));
    return(is_outlier)
  } else {
    is_outlier <- sample.send{latent}(Ber(0.9));
    return(is_outlier)
  }
}
"""

_COIN_MODEL = """
proc Coin() consume latent provide obs {
  bias <- sample.recv{latent}(Beta(2.0, 2.0));
  _ <- sample.send{obs}(Ber(bias));
  _ <- sample.send{obs}(Ber(bias));
  _ <- sample.send{obs}(Ber(bias));
  _ <- sample.send{obs}(Ber(bias));
  _ <- sample.send{obs}(Ber(bias));
  return(bias)
}
"""

_COIN_GUIDE = """
proc CoinGuide() provide latent {
  bias <- sample.send{latent}(Beta(3.0, 2.0));
  return(bias)
}
"""

_RANDOMWALK_MODEL = """
proc RandomWalk() consume latent provide obs {
  end <- call WalkStep(0.0);
  _ <- sample.send{obs}(Normal(end, 0.5));
  return(end)
}

proc WalkStep(position: real) consume latent {
  step <- sample.recv{latent}(Normal(0.0, 1.0));
  keep_going <- sample.recv{latent}(Ber(0.4));
  if.send{latent} keep_going {
    call WalkStep(position + step)
  } else {
    return(position + step)
  }
}
"""

_RANDOMWALK_GUIDE = """
proc RandomWalkGuide() provide latent {
  call WalkStepGuide()
}

proc WalkStepGuide() provide latent {
  step <- sample.send{latent}(Normal(0.0, 1.5));
  keep_going <- sample.send{latent}(Ber(0.4));
  if.recv{latent} {
    call WalkStepGuide()
  } else {
    return(step)
  }
}
"""

_BURGLARY_MODEL = """
proc Burglary() consume latent provide obs {
  burglary <- sample.recv{latent}(Ber(0.01));
  earthquake <- sample.recv{latent}(Ber(0.02));
  _ <- sample.send{obs}(Ber(if burglary then (if earthquake then 0.95 else 0.94)
                            else (if earthquake then 0.29 else 0.01)));
  return(burglary)
}
"""

_BURGLARY_GUIDE = """
proc BurglaryGuide() provide latent {
  burglary <- sample.send{latent}(Ber(0.3));
  earthquake <- sample.send{latent}(Ber(0.2));
  return(burglary)
}
"""

# Two divergent-control-flow time series: at every step the model announces a
# branch over the latent channel (``if.send``), so a lockstep particle
# population fractures into up to 2^T control-flow groups.  These are the
# stress tests for branch handling in the particle runtimes: the interpretive
# vectorizer re-executes every group from scratch when it splits, while the
# compiled backend partitions index sets and dispatches compiled sub-kernels.

_SWITCHING_MODEL = """
proc Switching() consume latent provide obs {
  x1 <- sample.recv{latent}(Normal(0.0, 1.0));
  m1 <- if.send{latent} x1 > 0.0 {
    _ <- sample.send{obs}(Normal(x1 + 1.0, 0.5));
    return(x1 + 1.0)
  } else {
    _ <- sample.send{obs}(Normal(x1 - 1.0, 2.0));
    return(x1 * 0.5 - 1.0)
  };
  x2 <- sample.recv{latent}(Normal(m1, 1.0));
  m2 <- if.send{latent} x2 > 0.0 {
    _ <- sample.send{obs}(Normal(x2 + 1.0, 0.5));
    return(x2 + 1.0)
  } else {
    _ <- sample.send{obs}(Normal(x2 - 1.0, 2.0));
    return(x2 * 0.5 - 1.0)
  };
  x3 <- sample.recv{latent}(Normal(m2, 1.0));
  m3 <- if.send{latent} x3 > 0.0 {
    _ <- sample.send{obs}(Normal(x3 + 1.0, 0.5));
    return(x3 + 1.0)
  } else {
    _ <- sample.send{obs}(Normal(x3 - 1.0, 2.0));
    return(x3 * 0.5 - 1.0)
  };
  x4 <- sample.recv{latent}(Normal(m3, 1.0));
  m4 <- if.send{latent} x4 > 0.0 {
    _ <- sample.send{obs}(Normal(x4 + 1.0, 0.5));
    return(x4 + 1.0)
  } else {
    _ <- sample.send{obs}(Normal(x4 - 1.0, 2.0));
    return(x4 * 0.5 - 1.0)
  };
  x5 <- sample.recv{latent}(Normal(m4, 1.0));
  m5 <- if.send{latent} x5 > 0.0 {
    _ <- sample.send{obs}(Normal(x5 + 1.0, 0.5));
    return(x5 + 1.0)
  } else {
    _ <- sample.send{obs}(Normal(x5 - 1.0, 2.0));
    return(x5 * 0.5 - 1.0)
  };
  return(x5)
}
"""

_SWITCHING_GUIDE = """
proc SwitchingGuide() provide latent {
  x1 <- sample.send{latent}(Normal(0.0, 1.5));
  s1 <- if.recv{latent} { return(x1) } else { return(x1) };
  x2 <- sample.send{latent}(Normal(x1, 1.5));
  s2 <- if.recv{latent} { return(x2) } else { return(x2) };
  x3 <- sample.send{latent}(Normal(x2, 1.5));
  s3 <- if.recv{latent} { return(x3) } else { return(x3) };
  x4 <- sample.send{latent}(Normal(x3, 1.5));
  s4 <- if.recv{latent} { return(x4) } else { return(x4) };
  x5 <- sample.send{latent}(Normal(x4, 1.5));
  s5 <- if.recv{latent} { return(x5) } else { return(x5) };
  return(x5)
}
"""

_JUMP_MODEL = """
proc Jump() consume latent provide obs {
  x1 <- sample.recv{latent}(Normal(0.0, 1.0));
  m1 <- if.send{latent} x1 < 1.0 {
    _ <- sample.send{obs}(Normal(x1, 0.5));
    return(x1)
  } else {
    j1 <- sample.recv{latent}(Gamma(2.0, 2.0));
    _ <- sample.send{obs}(Normal(x1 + j1, 1.5));
    return(x1 + j1)
  };
  x2 <- sample.recv{latent}(Normal(m1, 1.0));
  m2 <- if.send{latent} x2 < 1.0 {
    _ <- sample.send{obs}(Normal(x2, 0.5));
    return(x2)
  } else {
    j2 <- sample.recv{latent}(Gamma(2.0, 2.0));
    _ <- sample.send{obs}(Normal(x2 + j2, 1.5));
    return(x2 + j2)
  };
  x3 <- sample.recv{latent}(Normal(m2, 1.0));
  m3 <- if.send{latent} x3 < 1.0 {
    _ <- sample.send{obs}(Normal(x3, 0.5));
    return(x3)
  } else {
    j3 <- sample.recv{latent}(Gamma(2.0, 2.0));
    _ <- sample.send{obs}(Normal(x3 + j3, 1.5));
    return(x3 + j3)
  };
  x4 <- sample.recv{latent}(Normal(m3, 1.0));
  m4 <- if.send{latent} x4 < 1.0 {
    _ <- sample.send{obs}(Normal(x4, 0.5));
    return(x4)
  } else {
    j4 <- sample.recv{latent}(Gamma(2.0, 2.0));
    _ <- sample.send{obs}(Normal(x4 + j4, 1.5));
    return(x4 + j4)
  };
  x5 <- sample.recv{latent}(Normal(m4, 1.0));
  m5 <- if.send{latent} x5 < 1.0 {
    _ <- sample.send{obs}(Normal(x5, 0.5));
    return(x5)
  } else {
    j5 <- sample.recv{latent}(Gamma(2.0, 2.0));
    _ <- sample.send{obs}(Normal(x5 + j5, 1.5));
    return(x5 + j5)
  };
  return(m5)
}
"""

_JUMP_GUIDE = """
proc JumpGuide() provide latent {
  x1 <- sample.send{latent}(Normal(0.0, 1.2));
  m1 <- if.recv{latent} {
    return(x1)
  } else {
    j1 <- sample.send{latent}(Gamma(2.0, 1.5));
    return(x1 + j1)
  };
  x2 <- sample.send{latent}(Normal(m1, 1.2));
  m2 <- if.recv{latent} {
    return(x2)
  } else {
    j2 <- sample.send{latent}(Gamma(2.0, 1.5));
    return(x2 + j2)
  };
  x3 <- sample.send{latent}(Normal(m2, 1.2));
  m3 <- if.recv{latent} {
    return(x3)
  } else {
    j3 <- sample.send{latent}(Gamma(2.0, 1.5));
    return(x3 + j3)
  };
  x4 <- sample.send{latent}(Normal(m3, 1.2));
  m4 <- if.recv{latent} {
    return(x4)
  } else {
    j4 <- sample.send{latent}(Gamma(2.0, 1.5));
    return(x4 + j4)
  };
  x5 <- sample.send{latent}(Normal(m4, 1.2));
  m5 <- if.recv{latent} {
    return(x5)
  } else {
    j5 <- sample.send{latent}(Gamma(2.0, 1.5));
    return(x5 + j5)
  };
  return(m5)
}
"""

_SEASONAL_MODEL = """
proc Seasonal() consume latent provide obs {
  level <- sample.recv{latent}(Normal(0.0, 2.0));
  trend <- sample.recv{latent}(Normal(0.0, 0.5));
  noise <- sample.recv{latent}(Gamma(2.0, 4.0));
  _ <- sample.send{obs}(Normal(level + trend * 1.0, noise));
  _ <- sample.send{obs}(Normal(level + trend * 2.0, noise));
  _ <- sample.send{obs}(Normal(level + trend * 3.0, noise));
  return(trend)
}
"""

_SEASONAL_GUIDE = """
proc SeasonalGuide() provide latent {
  level <- sample.send{latent}(Normal(0.5, 1.0));
  trend <- sample.send{latent}(Normal(0.2, 0.5));
  noise <- sample.send{latent}(Gamma(2.0, 3.0));
  return(trend)
}
"""


# ---------------------------------------------------------------------------
# Growable streaming families
# ---------------------------------------------------------------------------


def streaming_sources(steps: int) -> Tuple[str, str]:
    """Model/guide sources of the ``stream_rw`` family unrolled to ``steps``.

    A Gaussian random walk conditioning on one noisy observation per step:
    latent state ``x_t ~ Normal(x_{t-1}, 1)`` and observation
    ``y_t ~ Normal(x_t, 0.5)``.  The program is *generated straight-line* for
    the requested length — every length certifies under the guide-type check
    and stays inside the compiled backend's fragment — which is what lets a
    streaming session grow its model one observation at a time while staying
    bit-identical to the equivalent one-shot run over the same prefix
    (see :mod:`repro.engine.streaming`).
    """
    steps = int(steps)
    if steps < 1:
        raise ValueError(f"streaming_sources needs steps >= 1, got {steps}")
    model = ["proc StreamRW() consume latent provide obs {"]
    guide = ["proc StreamRWGuide() provide latent {"]
    prev = "0.0"
    for t in range(1, steps + 1):
        model.append(f"  x{t} <- sample.recv{{latent}}(Normal({prev}, 1.0));")
        model.append(f"  _ <- sample.send{{obs}}(Normal(x{t}, 0.5));")
        guide.append(f"  x{t} <- sample.send{{latent}}(Normal({prev}, 1.5));")
        prev = f"x{t}"
    model.append(f"  return(x{steps})")
    model.append("}")
    guide.append(f"  return(x{steps})")
    guide.append("}")
    return "\n".join(model) + "\n", "\n".join(guide) + "\n"


#: Growable model families a streaming session may open with ``grow: true``:
#: name -> callable producing ``(model_source, guide_source)`` for a step
#: count.  Fixed-source pairs buffer until their observation demand is met;
#: growable families re-unroll to the journal length on every push.
STREAMING_FAMILIES = {"stream_rw": streaming_sources}


# ---------------------------------------------------------------------------
# The registry
# ---------------------------------------------------------------------------


def _build_registry() -> Dict[str, Benchmark]:
    benchmarks: List[Benchmark] = [
        Benchmark(
            name="lr",
            description="Bayesian linear regression",
            model_source=_LR_MODEL,
            model_entry="LinReg",
            guide_source=_LR_GUIDE,
            guide_entry="LinRegGuide",
            inference="IS",
            obs_values=(2.1, 3.9, 6.2, 8.1, 9.8),
            paper_table1=PaperTable1Row(True, 16, True),
        ),
        Benchmark(
            name="gmm",
            description="Gaussian mixture model",
            model_source=_GMM_MODEL,
            model_entry="Gmm",
            guide_source=_GMM_GUIDE,
            guide_entry="GmmGuide",
            inference="IS",
            obs_values=(-2.2, -1.8, 2.1, 2.4),
            paper_table1=PaperTable1Row(True, 44, True),
            paper_table2=PaperTable2Row("IS", 8.03, 185, 64.13, 38, 56.00),
        ),
        Benchmark(
            name="kalman",
            description="Kalman smoother",
            model_source=_KALMAN_MODEL,
            model_entry="Kalman",
            guide_source=_KALMAN_GUIDE,
            guide_entry="KalmanGuide",
            inference="IS",
            obs_values=(0.4, 0.9, 1.3, 1.9),
            paper_table1=PaperTable1Row(True, 32, True),
        ),
        Benchmark(
            name="sprinkler",
            description="Bayesian network (sprinkler)",
            model_source=_SPRINKLER_MODEL,
            model_entry="Sprinkler",
            guide_source=_SPRINKLER_GUIDE,
            guide_entry="SprinklerGuide",
            inference="IS",
            obs_values=(True,),
            paper_table1=PaperTable1Row(True, 22, True),
        ),
        Benchmark(
            name="hmm",
            description="Hidden Markov model",
            model_source=_HMM_MODEL,
            model_entry="Hmm",
            guide_source=_HMM_GUIDE,
            guide_entry="HmmGuide",
            inference="IS",
            obs_values=(0.8, 1.1, -0.9, -1.2),
            paper_table1=PaperTable1Row(True, 31, True),
        ),
        Benchmark(
            name="branching",
            description="Random control flow",
            model_source=_BRANCHING_MODEL,
            model_entry="Branching",
            guide_source=_BRANCHING_GUIDE,
            guide_entry="BranchingGuide",
            inference="IS",
            obs_values=(7,),
            branch_dependent=True,
            paper_table1=PaperTable1Row(True, 19, False),
            paper_table2=PaperTable2Row("IS", 1.74, 58, 8.49, 16, 7.48),
        ),
        Benchmark(
            name="marsaglia",
            description="Marsaglia polar algorithm",
            model_source=_MARSAGLIA_MODEL,
            model_entry="Marsaglia",
            guide_source=_MARSAGLIA_GUIDE,
            guide_entry="MarsagliaGuide",
            inference="IS",
            obs_values=(1.5,),
            recursive=True,
            branch_dependent=True,
            paper_table1=PaperTable1Row(True, 22, False),
        ),
        Benchmark(
            name="dp",
            description="Dirichlet process (stochastic memoization)",
            model_source=None,
            model_entry=None,
            expressible=False,
            paper_table1=PaperTable1Row(False, None, False),
            notes=(
                "Stochastic memoization is outside the coroutine calculus: the set "
                "of random variables depends on dynamically allocated memo tables, "
                "which cannot be described by a finite guidance protocol."
            ),
        ),
        Benchmark(
            name="ptrace",
            description="Poisson trace (Knuth's algorithm)",
            model_source=_PTRACE_MODEL,
            model_entry="Ptrace",
            guide_source=_PTRACE_GUIDE,
            guide_entry="PtraceGuide",
            inference="IS",
            obs_values=(3.0,),
            recursive=True,
            branch_dependent=True,
            paper_table1=PaperTable1Row(True, 11, False),
        ),
        Benchmark(
            name="aircraft",
            description="Aircraft detection",
            model_source=_AIRCRAFT_MODEL,
            model_entry="Aircraft",
            guide_source=_AIRCRAFT_GUIDE,
            guide_entry="AircraftGuide",
            inference="IS",
            obs_values=(-1.2, 3.4, True),
            paper_table1=PaperTable1Row(True, 32, True),
        ),
        Benchmark(
            name="weight",
            description="Unreliable weigh",
            model_source=_WEIGHT_MODEL,
            model_entry="Weigh",
            guide_source=_WEIGHT_GUIDE,
            guide_entry="WeighGuide",
            inference="VI",
            obs_values=(9.5,),
            guide_param_inits={"loc": 8.5, "log_scale": 0.0},
            paper_table1=PaperTable1Row(True, 8, True),
            paper_table2=PaperTable2Row("VI", 0.66, 35, 2.76, 7, 2.66),
        ),
        Benchmark(
            name="vae",
            description="Variational autoencoder (toy linear decoder)",
            model_source=_VAE_MODEL,
            model_entry="Vae",
            guide_source=_VAE_GUIDE,
            guide_entry="VaeGuide",
            inference="VI",
            obs_values=(0.7, -0.4, 0.5, -0.2),
            guide_param_inits={"m1": 0.0, "s1": 0.0, "m2": 0.0, "s2": 0.0},
            paper_table1=PaperTable1Row(True, 26, True),
            paper_table2=PaperTable2Row("VI", 10.36, 72, 34.96, 26, 32.69),
        ),
        Benchmark(
            name="ex-1",
            description="Fig. 5: conditional model with matching guide",
            model_source=_EX1_MODEL,
            model_entry="Model",
            guide_source=_EX1_GUIDE,
            guide_entry="Guide1",
            inference="IS",
            obs_values=(0.8,),
            branch_dependent=True,
            paper_table1=PaperTable1Row(True, 13, False),
            paper_table2=PaperTable2Row("IS", 0.75, 57, 5.44, 16, 5.27),
        ),
        Benchmark(
            name="ex-2",
            description="Fig. 6: recursive PCFG",
            model_source=_EX2_MODEL,
            model_entry="Pcfg",
            guide_source=_EX2_GUIDE,
            guide_entry="PcfgGuide",
            inference=None,
            recursive=True,
            branch_dependent=True,
            paper_table1=PaperTable1Row(True, 21, False),
        ),
        Benchmark(
            name="gp-dsl",
            description="Gaussian-process kernel DSL (PCFG over kernels)",
            model_source=_GPDSL_MODEL,
            model_entry="GpDsl",
            guide_source=_GPDSL_GUIDE,
            guide_entry="GpDslGuide",
            inference="IS",
            obs_values=(2.4,),
            recursive=True,
            branch_dependent=True,
            paper_table1=PaperTable1Row(True, 58, False),
        ),
        # -- extra synthetic benchmarks (not in the paper's selected table) ----
        Benchmark(
            name="outliers",
            description="Linear-regression outlier component (Sec. 2.2 MCMC guide)",
            model_source=_OUTLIERS_MODEL,
            model_entry="Outliers",
            guide_source=_OUTLIERS_GUIDE,
            guide_entry="OutliersGuide",
            inference="MCMC",
            obs_values=(2.3,),
            selected=False,
        ),
        Benchmark(
            name="coin",
            description="Beta-Bernoulli coin bias",
            model_source=_COIN_MODEL,
            model_entry="Coin",
            guide_source=_COIN_GUIDE,
            guide_entry="CoinGuide",
            inference="IS",
            obs_values=(True, True, False, True, True),
            selected=False,
        ),
        Benchmark(
            name="randomwalk",
            description="Geometric-length Gaussian random walk",
            model_source=_RANDOMWALK_MODEL,
            model_entry="RandomWalk",
            guide_source=_RANDOMWALK_GUIDE,
            guide_entry="RandomWalkGuide",
            inference="IS",
            obs_values=(1.0,),
            recursive=True,
            branch_dependent=True,
            selected=False,
        ),
        Benchmark(
            name="burglary",
            description="Burglary/earthquake alarm network",
            model_source=_BURGLARY_MODEL,
            model_entry="Burglary",
            guide_source=_BURGLARY_GUIDE,
            guide_entry="BurglaryGuide",
            inference="IS",
            obs_values=(True,),
            selected=False,
        ),
        Benchmark(
            name="switching",
            description="Regime-switching time series (5 announced branches)",
            model_source=_SWITCHING_MODEL,
            model_entry="Switching",
            guide_source=_SWITCHING_GUIDE,
            guide_entry="SwitchingGuide",
            inference="IS",
            obs_values=(1.4, 2.1, 2.8, 3.1, 3.9),
            branch_dependent=True,
            selected=False,
        ),
        Benchmark(
            name="jump",
            description="Jump-diffusion walk (branch-dependent latent structure)",
            model_source=_JUMP_MODEL,
            model_entry="Jump",
            guide_source=_JUMP_GUIDE,
            guide_entry="JumpGuide",
            inference="IS",
            obs_values=(0.6, 1.8, 2.4, 3.0, 2.2),
            branch_dependent=True,
            selected=False,
        ),
        Benchmark(
            name="seasonal",
            description="Local-level plus trend time series",
            model_source=_SEASONAL_MODEL,
            model_entry="Seasonal",
            guide_source=_SEASONAL_GUIDE,
            guide_entry="SeasonalGuide",
            inference="IS",
            obs_values=(1.1, 1.9, 3.2),
            selected=False,
        ),
        Benchmark(
            name="stream_rw",
            description="Gaussian random walk (growable streaming family)",
            model_source=streaming_sources(4)[0],
            model_entry="StreamRW",
            guide_source=streaming_sources(4)[1],
            guide_entry="StreamRWGuide",
            inference="IS",
            obs_values=(0.4, 1.1, 0.8, 1.6),
            selected=False,
            notes="Registered here as its 4-step unroll; streaming sessions "
                  "re-unroll it per pushed observation (STREAMING_FAMILIES).",
        ),
    ]
    return {b.name: b for b in benchmarks}


_REGISTRY = _build_registry()

#: Additional guide variants referenced by the soundness ablation (E6).
EX1_GUIDE_VI_SOURCE = _EX1_GUIDE_VI
EX1_GUIDE_UNSOUND_IS_SOURCE = _EX1_GUIDE_UNSOUND_IS
EX1_GUIDE_UNSOUND_VI_SOURCE = _EX1_GUIDE_UNSOUND_VI

# Parameterized guide variants used by the SVI engines and their gradient
# tests: the weight guide with a *directly* positive scale (constrained by a
# ParamStore softplus transform rather than exp-reparameterized inside the
# program), and a Beta guide exposing the coin model's proposal as two
# positive shape parameters.
_WEIGHT_GUIDE_POSITIVE = """
proc WeighGuideP(loc: real, scale: preal) provide latent {
  weight <- sample.send{latent}(Normal(loc, scale));
  return(weight)
}
"""

_COIN_GUIDE_PARAM = """
proc CoinGuideP(a: preal, b: preal) provide latent {
  bias <- sample.send{latent}(Beta(a, b));
  return(bias)
}
"""

WEIGHT_GUIDE_POSITIVE_SOURCE = _WEIGHT_GUIDE_POSITIVE
COIN_GUIDE_PARAM_SOURCE = _COIN_GUIDE_PARAM


def all_benchmarks() -> List[Benchmark]:
    """Every benchmark, selected and extra, in registry order."""
    return list(_REGISTRY.values())


def selected_benchmarks() -> List[Benchmark]:
    """The benchmarks that appear in the paper's Table 1."""
    return [b for b in _REGISTRY.values() if b.selected]


def get_benchmark(name: str) -> Benchmark:
    """Look up a benchmark by name."""
    try:
        return _REGISTRY[name]
    except KeyError as exc:
        raise KeyError(
            f"unknown benchmark {name!r}; available: {sorted(_REGISTRY)}"
        ) from exc
