"""Handwritten mini-Pyro versions of the Table 2 benchmark programs.

Table 2 compares inference time on code compiled from the coroutine PPL
against "handwritten Pyro code" for the same model, guide, data, and
hyper-parameters.  These are the handwritten counterparts: plain Python
functions that call :func:`repro.minipyro.sample` / ``param`` directly, with
no coroutine communication.

Each entry in :data:`HANDWRITTEN` maps a benchmark name to a
:class:`HandwrittenPair` with ``model(data)`` and ``guide(data)`` callables
(the guide ignores the data for the non-amortised guides used here), the
data tuple, and the line counts used for the HLOC column.
"""

from __future__ import annotations

import inspect
from dataclasses import dataclass
from typing import Callable, Dict, Sequence, Tuple

from repro.dists import Bernoulli, Beta, Gamma, Normal, Poisson, Uniform01
from repro.minipyro import param, sample


def _loc_of(*functions: Callable) -> int:
    """Count non-blank, non-comment source lines of the given functions."""
    total = 0
    for fn in functions:
        for line in inspect.getsource(fn).splitlines():
            stripped = line.strip()
            if stripped and not stripped.startswith("#") and not stripped.startswith('"""'):
                total += 1
    return total


@dataclass
class HandwrittenPair:
    """A handwritten model/guide pair plus its data and inference algorithm."""

    name: str
    algorithm: str  # "IS" or "VI"
    model: Callable
    guide: Callable
    data: Tuple[object, ...]
    lines_of_code: int


# ---------------------------------------------------------------------------
# ex-1 (Fig. 5): conditional model with a matching guide — IS
# ---------------------------------------------------------------------------


def ex1_model(data: Sequence[float]) -> float:
    v = sample("x", Gamma(2.0, 1.0))
    if v < 2.0:
        sample("z", Normal(-1.0, 1.0), obs=data[0])
    else:
        m = sample("y", Beta(3.0, 1.0))
        sample("z", Normal(m, 1.0), obs=data[0])
    return v


def ex1_guide(data: Sequence[float]) -> float:
    v = sample("x", Gamma(1.0, 1.0))
    if v < 2.0:
        pass
    else:
        sample("y", Uniform01())
    return v


# ---------------------------------------------------------------------------
# branching: random control flow — IS
# ---------------------------------------------------------------------------


def branching_model(data: Sequence[int]) -> int:
    r = sample("r", Poisson(4.0))
    if r < 4:
        sample("count", Poisson(6.0), obs=data[0])
    else:
        m = sample("m", Uniform01())
        sample("count", Poisson(6.0 + 10.0 * m), obs=data[0])
    return r


def branching_guide(data: Sequence[int]) -> int:
    r = sample("r", Poisson(3.0))
    if r < 4:
        pass
    else:
        sample("m", Beta(2.0, 2.0))
    return r


# ---------------------------------------------------------------------------
# gmm: two-component Gaussian mixture over four points — IS
# ---------------------------------------------------------------------------


def gmm_model(data: Sequence[float]) -> float:
    mu1 = sample("mu1", Normal(-2.0, 5.0))
    mu2 = sample("mu2", Normal(2.0, 5.0))
    for i, y in enumerate(data):
        z = sample(f"z{i}", Bernoulli(0.5))
        mean = mu1 if z else mu2
        sample(f"y{i}", Normal(mean, 1.0), obs=y)
    return mu1


def gmm_guide(data: Sequence[float]) -> float:
    mu1 = sample("mu1", Normal(-2.0, 3.0))
    sample("mu2", Normal(2.0, 3.0))
    for i in range(len(data)):
        sample(f"z{i}", Bernoulli(0.5))
    return mu1


# ---------------------------------------------------------------------------
# weight: unreliable weigh — VI
# ---------------------------------------------------------------------------


def weight_model(data: Sequence[float]) -> float:
    w = sample("weight", Normal(8.5, 1.0))
    sample("measurement", Normal(w, 0.75), obs=data[0])
    return w


def weight_guide(data: Sequence[float]) -> float:
    import math

    loc = param("loc", 8.5)
    log_scale = param("log_scale", 0.0)
    return sample("weight", Normal(loc, math.exp(log_scale)))


# ---------------------------------------------------------------------------
# vae: toy linear-decoder variational autoencoder — VI
# ---------------------------------------------------------------------------

_VAE_DECODER = (
    (0.9, 0.1, 0.2),
    (0.4, -0.6, -0.1),
    (-0.7, 0.8, 0.3),
    (0.2, 0.5, -0.4),
)


def vae_model(data: Sequence[float]) -> float:
    z1 = sample("z1", Normal(0.0, 1.0))
    z2 = sample("z2", Normal(0.0, 1.0))
    for i, (w1, w2, b) in enumerate(_VAE_DECODER):
        sample(f"x{i}", Normal(w1 * z1 + w2 * z2 + b, 0.5), obs=data[i])
    return z1


def vae_guide(data: Sequence[float]) -> float:
    import math

    m1 = param("m1", 0.0)
    s1 = param("s1", 0.0)
    m2 = param("m2", 0.0)
    s2 = param("s2", 0.0)
    z1 = sample("z1", Normal(m1, math.exp(s1)))
    sample("z2", Normal(m2, math.exp(s2)))
    return z1


# ---------------------------------------------------------------------------
# Registry
# ---------------------------------------------------------------------------

HANDWRITTEN: Dict[str, HandwrittenPair] = {
    "ex-1": HandwrittenPair(
        name="ex-1",
        algorithm="IS",
        model=ex1_model,
        guide=ex1_guide,
        data=(0.8,),
        lines_of_code=_loc_of(ex1_model, ex1_guide),
    ),
    "branching": HandwrittenPair(
        name="branching",
        algorithm="IS",
        model=branching_model,
        guide=branching_guide,
        data=(7,),
        lines_of_code=_loc_of(branching_model, branching_guide),
    ),
    "gmm": HandwrittenPair(
        name="gmm",
        algorithm="IS",
        model=gmm_model,
        guide=gmm_guide,
        data=(-2.2, -1.8, 2.1, 2.4),
        lines_of_code=_loc_of(gmm_model, gmm_guide),
    ),
    "weight": HandwrittenPair(
        name="weight",
        algorithm="VI",
        model=weight_model,
        guide=weight_guide,
        data=(9.5,),
        lines_of_code=_loc_of(weight_model, weight_guide),
    ),
    "vae": HandwrittenPair(
        name="vae",
        algorithm="VI",
        model=vae_model,
        guide=vae_guide,
        data=(0.7, -0.4, 0.5, -0.2),
        lines_of_code=_loc_of(vae_model, vae_guide),
    ),
}


def get_handwritten(name: str) -> HandwrittenPair:
    """Look up a handwritten pair by benchmark name."""
    try:
        return HANDWRITTEN[name]
    except KeyError as exc:
        raise KeyError(
            f"no handwritten version of benchmark {name!r}; available: {sorted(HANDWRITTEN)}"
        ) from exc
