"""Benchmark model library.

``library``
    The paper's benchmark programs (Table 1's selected rows plus a few extra
    synthetic models), written in our surface syntax with matching guides,
    observation data, and the paper-reported numbers used by
    ``EXPERIMENTS.md``.
``handwritten``
    Handwritten mini-Pyro versions of the Table 2 programs, used as the
    baseline against which compiled-code inference time is compared.
"""

from repro.models.library import (
    Benchmark,
    COIN_GUIDE_PARAM_SOURCE,
    STREAMING_FAMILIES,
    WEIGHT_GUIDE_POSITIVE_SOURCE,
    all_benchmarks,
    get_benchmark,
    selected_benchmarks,
    source_loc,
    streaming_sources,
)

__all__ = [
    "Benchmark",
    "COIN_GUIDE_PARAM_SOURCE",
    "STREAMING_FAMILIES",
    "WEIGHT_GUIDE_POSITIVE_SOURCE",
    "all_benchmarks",
    "selected_benchmarks",
    "get_benchmark",
    "source_loc",
    "streaming_sources",
]
