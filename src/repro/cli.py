"""Command-line interface for the guide-types reproduction.

Usage (after ``python setup.py develop`` / ``pip install -e .``)::

    python -m repro.cli infer-types  MODEL.gt            # print inferred guide types
    python -m repro.cli check        MODEL.gt GUIDE.gt   # absolute-continuity certificate
    python -m repro.cli compile      MODEL.gt GUIDE.gt   # emit mini-Pyro Python code
    python -m repro.cli run-is       MODEL.gt GUIDE.gt --obs 0.8 --samples 1000
    python -m repro.cli benchmarks                       # list the bundled benchmarks

Model/guide entry procedures default to the first procedure that consumes /
provides the ``latent`` channel respectively; override with ``--model-entry``
and ``--guide-entry``.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import Optional

import numpy as np

from repro.compiler import compile_pair
from repro.core.ast import Program
from repro.core.parser import parse_program
from repro.core.semantics.traces import ValP
from repro.core.typecheck import check_model_guide_pair, infer_guide_types
from repro.errors import ReproError
from repro.inference import importance_sampling
from repro.models import all_benchmarks
from repro.utils.pretty import pretty_guide_type, pretty_type_table


def _load_program(path: str) -> Program:
    source = Path(path).read_text(encoding="utf-8")
    return parse_program(source)


def _default_model_entry(program: Program, latent: str) -> str:
    for proc in program.procedures:
        if proc.consumes == latent:
            return proc.name
    return program.procedures[0].name


def _default_guide_entry(program: Program, latent: str) -> str:
    for proc in program.procedures:
        if proc.provides == latent:
            return proc.name
    return program.procedures[0].name


def cmd_infer_types(args: argparse.Namespace) -> int:
    program = _load_program(args.model)
    result = infer_guide_types(program)
    print(pretty_type_table(result.table))
    print()
    for proc, channels in result.channel_types.items():
        for channel, guide_type in channels.items():
            print(f"{proc} / {channel}: {pretty_guide_type(guide_type)}")
    return 0


def cmd_check(args: argparse.Namespace) -> int:
    model = _load_program(args.model)
    guide = _load_program(args.guide)
    model_entry = args.model_entry or _default_model_entry(model, args.latent)
    guide_entry = args.guide_entry or _default_guide_entry(guide, args.latent)
    result = check_model_guide_pair(
        model, guide, model_entry, guide_entry, latent_channel=args.latent
    )
    print(f"model latent protocol : {pretty_guide_type(result.latent_type_model)}")
    print(f"guide latent protocol : {pretty_guide_type(result.latent_type_guide)}")
    if result.compatible:
        print("RESULT: compatible — absolute continuity certified")
        return 0
    print(f"RESULT: INCOMPATIBLE — {result.reason}")
    return 1


def cmd_compile(args: argparse.Namespace) -> int:
    model = _load_program(args.model)
    guide = _load_program(args.guide)
    model_entry = args.model_entry or _default_model_entry(model, args.latent)
    guide_entry = args.guide_entry or _default_guide_entry(guide, args.latent)
    source = compile_pair(model, guide, model_entry, guide_entry)
    if args.output:
        Path(args.output).write_text(source, encoding="utf-8")
        print(f"wrote {len(source.splitlines())} lines to {args.output}")
    else:
        print(source)
    return 0


def cmd_run_is(args: argparse.Namespace) -> int:
    model = _load_program(args.model)
    guide = _load_program(args.guide)
    model_entry = args.model_entry or _default_model_entry(model, args.latent)
    guide_entry = args.guide_entry or _default_guide_entry(guide, args.latent)

    pair = check_model_guide_pair(
        model, guide, model_entry, guide_entry, latent_channel=args.latent
    )
    if not pair.compatible and not args.force:
        print(f"refusing to run: {pair.reason}")
        print("(pass --force to run anyway)")
        return 1

    obs_trace = tuple(ValP(v) for v in args.obs) if args.obs else None
    result = importance_sampling(
        model, guide, model_entry, guide_entry,
        obs_trace=obs_trace, num_samples=args.samples,
        rng=np.random.default_rng(args.seed),
    )
    print(f"particles               : {result.num_samples}")
    print(f"log evidence estimate   : {result.log_evidence():.4f}")
    print(f"effective sample size   : {result.effective_sample_size():.1f}")
    try:
        print(f"posterior mean (site 0) : {result.posterior_expectation_of_site(0):.4f}")
    except ReproError:
        pass
    return 0


def cmd_benchmarks(_args: argparse.Namespace) -> int:
    print(f"{'name':<12} {'selected':<9} {'inference':<9} {'LOC':>4}  description")
    for bench in all_benchmarks():
        loc = bench.model_loc if bench.expressible else 0
        print(
            f"{bench.name:<12} {'yes' if bench.selected else 'no':<9} "
            f"{bench.inference or '-':<9} {loc:>4}  {bench.description}"
        )
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro", description="Guide-types PPL command line"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_infer = sub.add_parser("infer-types", help="infer guide types for a program")
    p_infer.add_argument("model", help="path to a .gt source file")
    p_infer.set_defaults(func=cmd_infer_types)

    def add_pair_arguments(p: argparse.ArgumentParser) -> None:
        p.add_argument("model", help="path to the model source file")
        p.add_argument("guide", help="path to the guide source file")
        p.add_argument("--model-entry", default=None)
        p.add_argument("--guide-entry", default=None)
        p.add_argument("--latent", default="latent", help="latent channel name")

    p_check = sub.add_parser("check", help="check model/guide absolute continuity")
    add_pair_arguments(p_check)
    p_check.set_defaults(func=cmd_check)

    p_compile = sub.add_parser("compile", help="compile a pair to mini-Pyro Python")
    add_pair_arguments(p_compile)
    p_compile.add_argument("--output", "-o", default=None)
    p_compile.set_defaults(func=cmd_compile)

    p_is = sub.add_parser("run-is", help="run importance sampling on a pair")
    add_pair_arguments(p_is)
    p_is.add_argument("--obs", type=float, nargs="*", default=None,
                      help="observed values for the obs channel, in order")
    p_is.add_argument("--samples", type=int, default=1000)
    p_is.add_argument("--seed", type=int, default=0)
    p_is.add_argument("--force", action="store_true",
                      help="run even if the pair is not certified")
    p_is.set_defaults(func=cmd_run_is)

    p_bench = sub.add_parser("benchmarks", help="list the bundled benchmark programs")
    p_bench.set_defaults(func=cmd_benchmarks)

    return parser


def main(argv: Optional[list[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except FileNotFoundError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    sys.exit(main())
