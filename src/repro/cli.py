"""Command-line interface for the guide-types reproduction.

Usage (after ``python setup.py develop`` / ``pip install -e .``)::

    python -m repro.cli infer-types  MODEL.gt            # print inferred guide types
    python -m repro.cli check        MODEL.gt GUIDE.gt   # absolute-continuity certificate
    python -m repro.cli compile      MODEL.gt GUIDE.gt   # emit mini-Pyro Python code
    python -m repro.cli run-is       MODEL.gt GUIDE.gt --obs 0.8 --particles 1000
    python -m repro.cli run-smc      MODEL.gt GUIDE.gt --obs 0.8 --particles 1000
    python -m repro.cli run-svi      MODEL.gt GUIDE.gt --obs 0.8 --steps 50 \
                                     --param loc=8.5 --param log_scale=0.0
    python -m repro.cli serve        --port 7341 --workers 4   # batch-inference server
    python -m repro.cli loadgen      --port 7341 --rate 50 --duration 5   # open-loop load
    python -m repro.cli benchmarks                       # list the bundled benchmarks
    python -m repro.cli bench run    --fast --out bench_runs/smoke   # benchmark sweep
    python -m repro.cli bench evaluate --run bench_runs/smoke        # curves + gates

``run-is`` executes on the vectorized particle engine by default; pass
``--engine sequential`` for the original one-particle-at-a-time loop.
Model/guide entry procedures default to the first procedure that consumes /
provides the ``latent`` channel respectively; override with ``--model-entry``
and ``--guide-entry``.
"""

from __future__ import annotations

import argparse
import dataclasses
import math
import sys
from pathlib import Path
from typing import Optional

from repro.compiler import compile_pair
from repro.core.ast import Program
from repro.core.parser import parse_program
from repro.core.typecheck import infer_guide_types
from repro.engine import ProgramSession
from repro.errors import InferenceError, ReproError
from repro.models import all_benchmarks
from repro.utils.pretty import pretty_guide_type, pretty_type_table


def _load_program(path: str) -> Program:
    source = Path(path).read_text(encoding="utf-8")
    return parse_program(source)


def _session_for(args: argparse.Namespace, typecheck: bool = True) -> ProgramSession:
    """Build (or fetch from cache) the prepared session for a CLI request."""
    return ProgramSession.from_sources(
        Path(args.model).read_text(encoding="utf-8"),
        Path(args.guide).read_text(encoding="utf-8"),
        model_entry=args.model_entry,
        guide_entry=args.guide_entry,
        latent_channel=args.latent,
        typecheck=typecheck,
    )


def cmd_infer_types(args: argparse.Namespace) -> int:
    program = _load_program(args.model)
    result = infer_guide_types(program)
    print(pretty_type_table(result.table))
    print()
    for proc, channels in result.channel_types.items():
        for channel, guide_type in channels.items():
            print(f"{proc} / {channel}: {pretty_guide_type(guide_type)}")
    return 0


def cmd_check(args: argparse.Namespace) -> int:
    session = _session_for(args)
    result = session.check
    print(f"model latent protocol : {pretty_guide_type(result.latent_type_model)}")
    print(f"guide latent protocol : {pretty_guide_type(result.latent_type_guide)}")
    if result.compatible:
        print("RESULT: compatible — absolute continuity certified")
        return 0
    print(f"RESULT: INCOMPATIBLE — {result.reason}")
    return 1


def cmd_compile(args: argparse.Namespace) -> int:
    # Compilation never gated on the certificate before the session rework;
    # keep it that way (the generated code carries its own runtime checks).
    session = _session_for(args, typecheck=False)
    source = compile_pair(
        session.model_program, session.guide_program,
        session.model_entry, session.guide_entry,
    )
    if args.output:
        Path(args.output).write_text(source, encoding="utf-8")
        print(f"wrote {len(source.splitlines())} lines to {args.output}")
    else:
        print(source)
    return 0


def _particle_count(args: argparse.Namespace) -> int:
    if args.particles is not None:
        return args.particles
    return args.samples


def _refuse_uncertified(session: ProgramSession, args: argparse.Namespace) -> bool:
    if not session.certified and not args.force:
        print(f"refusing to run: {session.certification_reason}")
        print("(pass --force to run anyway)")
        return True
    return False


def _print_backend(session, diagnostics: dict) -> None:
    """Report which particle runtime actually served the request.

    The fallback reason is surfaced uniformly across ``run-is``/``run-smc``/
    ``run-svi``: the per-run diagnostics win (they carry runtime fallbacks
    like a mid-run sequential divert), with the session's compile-gate
    verdict as the fallback source.
    """
    backend = diagnostics.get("backend")
    if backend is None and session.compiled_backend_supported is None:
        return
    reason = diagnostics.get("fallback_reason") or session.compiled_fallback_reason
    if reason is not None:
        print(f"backend                 : interp (compiled fallback: {reason})")
    elif backend is not None:
        jit = diagnostics.get("jit", "none")
        suffix = f" (jit={jit})" if jit not in (None, "none") else ""
        print(f"backend                 : {backend}{suffix}")


def _print_sharding(args: argparse.Namespace) -> None:
    """Report the shard plan when the request asked for one."""
    from repro.engine.shard import plan_info

    if getattr(args, "workers", 1) == 1 and getattr(args, "shards", None) is None:
        return
    print(f"sharding                : {plan_info(args.workers, args.shards).describe()}")


def _shard_kwargs(args: argparse.Namespace) -> dict:
    """The request fields carrying the CLI's shard controls."""
    return {"workers": args.workers, "shards": args.shards}


def _start_run_observability(args: argparse.Namespace) -> bool:
    """Turn on structured tracing when ``--profile``/``--trace-out`` ask for it.

    Must run before the session is built so parse/typecheck/compile spans are
    captured too.  Returns whether tracing was enabled (the matching
    :func:`_finish_run_observability` call needs to know).
    """
    from repro.obs import enable_tracing

    if not (getattr(args, "profile", False) or getattr(args, "trace_out", None)):
        return False
    enable_tracing()
    return True


def _finish_run_observability(args: argparse.Namespace, enabled: bool) -> None:
    """Flush tracing output: the Chrome trace file and/or the profile table."""
    from repro.obs import disable_tracing

    if not enabled:
        return
    recorder = disable_tracing()
    if recorder is None:
        return
    if getattr(args, "trace_out", None):
        recorder.save(args.trace_out)
        print(f"trace                   : {len(recorder.events)} span(s) -> {args.trace_out}")
    if getattr(args, "profile", False):
        summary = recorder.summary()
        if summary:
            print()
            print(f"{'phase':<20} {'count':>7} {'total ms':>10} {'max ms':>10}")
            for name, row in sorted(
                summary.items(), key=lambda kv: kv[1]["total_s"], reverse=True
            ):
                print(f"{name:<20} {row['count']:>7} "
                      f"{row['total_s'] * 1e3:>10.2f} {row['max_s'] * 1e3:>10.2f}")


def _print_engine_summary(result, num_particles: int) -> None:
    print(f"particles               : {num_particles}")
    log_evidence = result.log_evidence()
    if log_evidence is not None:
        print(f"log evidence estimate   : {log_evidence:.4f}")
    ess = result.effective_sample_size()
    if ess is not None:
        print(f"effective sample size   : {ess:.1f}")
    try:
        print(f"posterior mean (site 0) : {result.posterior_mean(0):.4f}")
    except ReproError:
        pass


def cmd_run_is(args: argparse.Namespace) -> int:
    tracing = _start_run_observability(args)
    try:
        session = _session_for(args)
        if _refuse_uncertified(session, args):
            return 1
        engine = "is" if args.engine == "vectorized" else "is-sequential"
        num_particles = _particle_count(args)
        result = session.infer(
            engine,
            num_particles=num_particles,
            obs_values=args.obs or None,  # empty --obs means prior predictive
            seed=args.seed,
            backend=args.backend,
            jit=args.jit,
            **_shard_kwargs(args),
        )
        _print_engine_summary(result, num_particles)
        diagnostics = result.diagnostics()
        if "num_groups" in diagnostics:
            print(f"control-flow groups     : {diagnostics['num_groups']}")
        _print_backend(session, diagnostics)
        _print_sharding(args)
        return 0
    finally:
        _finish_run_observability(args, tracing)


def cmd_run_smc(args: argparse.Namespace) -> int:
    tracing = _start_run_observability(args)
    try:
        session = _session_for(args)
        if _refuse_uncertified(session, args):
            return 1
        if not args.obs:
            print("error: run-smc requires at least one --obs value", file=sys.stderr)
            return 2
        num_particles = _particle_count(args)
        result = session.infer(
            "smc",
            num_particles=num_particles,
            obs_values=args.obs,
            seed=args.seed,
            ess_threshold=args.ess_threshold,
            rejuvenate=not args.no_rejuvenation,
            backend=args.backend,
            jit=args.jit,
            **_shard_kwargs(args),
        )
        _print_engine_summary(result, num_particles)
        diagnostics = result.diagnostics()
        resampled = diagnostics["resample_steps"]
        print(f"resampled at steps      : {resampled if resampled else 'never'}")
        rates = diagnostics["rejuvenation_rates"]
        if rates:
            print(f"rejuvenation acceptance : {', '.join(f'{r:.2f}' for r in rates)}")
        _print_backend(session, diagnostics)
        _print_sharding(args)
        return 0
    finally:
        _finish_run_observability(args, tracing)


def _parse_param_specs(specs, what: str) -> dict:
    """Parse repeated ``name=value`` CLI arguments into a dict."""
    out = {}
    for spec in specs or []:
        name, sep, value = spec.partition("=")
        if not sep or not name:
            raise InferenceError(f"{what} expects name=value, got {spec!r}")
        out[name] = value
    return out


def cmd_run_svi(args: argparse.Namespace) -> int:
    from repro.engine.svi import guide_entry_params

    tracing = _start_run_observability(args)
    try:
        session = _session_for(args)
        if _refuse_uncertified(session, args):
            return 1
        guide_proc_params = guide_entry_params(session.guide_program, session.guide_entry)

        inits = {}
        for name, value in _parse_param_specs(args.param, "--param").items():
            try:
                inits[name] = float(value)
            except ValueError:
                raise InferenceError(f"--param {name} expects a numeric value, got {value!r}")
        constraints = _parse_param_specs(args.constraint, "--constraint")
        if not inits and guide_proc_params:
            # No explicit initial values: start each parameter at its transform's
            # unconstrained origin (0.0 for real, softplus(0)=log 2 ~ 0.69 for
            # positive, sigmoid(0)=0.5 for unit).
            defaults = {"positive": math.log(2.0), "unit": 0.5}
            inits = {
                name: defaults.get(constraints.get(name, "real"), 0.0)
                for name in guide_proc_params
            }
            print(f"no --param given: initialising {dict(inits)}")

        num_particles = _particle_count(args)
        result = session.infer(
            args.engine,
            num_particles=num_particles,
            obs_values=args.obs or None,
            seed=args.seed,
            guide_params=inits or None,
            param_constraints=constraints or None,
            num_steps=args.steps,
            optimizer=args.optimizer,
            learning_rate=args.lr,
            rao_blackwellize=args.rao_blackwellize,
            final_particles=args.final_particles,
            backend=args.backend,
            jit=args.jit,
            **_shard_kwargs(args),
        )
        diagnostics = result.diagnostics()
        history = diagnostics.get("elbo_history", [])
        print(f"engine                  : {diagnostics.get('engine', args.engine)}")
        print(f"optimisation steps      : {diagnostics.get('num_steps', 0)}")
        if history:
            print(f"ELBO trajectory         : {history[0]:.4f} -> {history[-1]:.4f}")
        fitted = diagnostics.get("fitted_params", {})
        if fitted:
            rendered = ", ".join(f"{k}={v:.4f}" for k, v in fitted.items())
            print(f"fitted parameters       : {rendered}")
        # Evidence/ESS/posterior all come from the final pass through the fitted
        # guide, so report that pass's particle count, not the fit batch size.
        _print_engine_summary(result, args.final_particles or num_particles)
        _print_backend(session, diagnostics)
        _print_sharding(args)
        return 0
    finally:
        _finish_run_observability(args, tracing)


def cmd_serve(args: argparse.Namespace) -> int:
    """Run the async batch-inference server until interrupted."""
    import asyncio

    from repro.engine.server import run_server

    if args.kernel_cache is not None:
        from repro.engine.backend import set_kernel_cache_capacity

        set_kernel_cache_capacity(args.kernel_cache)
    if args.session_cache is not None:
        from repro.engine.session import set_session_cache_capacity

        set_session_cache_capacity(args.session_cache)
    try:
        asyncio.run(
            run_server(
                host=args.host,
                port=args.port,
                workers=args.workers,
                batch_window_s=args.batch_window_ms / 1e3,
                max_queue=args.max_queue,
                max_batch=args.max_batch,
                tenant_rate=args.tenant_rate,
                tenant_burst=args.tenant_burst,
                session_ttl_s=args.session_ttl,
                max_sessions=args.max_sessions,
                sessions_per_tenant=args.sessions_per_tenant,
                checkpoint_dir=args.checkpoint_dir,
            )
        )
    except KeyboardInterrupt:
        print("server stopped")
    return 0


def cmd_loadgen(args: argparse.Namespace) -> int:
    """Drive a running server with open-loop Poisson load and report on it."""
    import asyncio
    import json as json_mod

    from repro.engine.loadgen import (
        LoadConfig,
        parse_csv,
        record_bench_entry,
        report_as_json,
        run_load,
        run_session_verify,
    )

    if args.verify_sessions:
        try:
            recorded = json_mod.loads(Path(args.verify_sessions).read_text())
        except (OSError, ValueError) as exc:
            print(f"loadgen: cannot read {args.verify_sessions}: {exc}", file=sys.stderr)
            return 2
        sessions = recorded.get("sessions") or []
        if not sessions:
            print(f"loadgen: no sessions recorded in {args.verify_sessions}", file=sys.stderr)
            return 2
        try:
            verdict = asyncio.run(run_session_verify(args.host, args.port, sessions))
        except ConnectionRefusedError:
            print(f"loadgen: no server listening on {args.host}:{args.port}", file=sys.stderr)
            return 2
        print(
            f"sessions : {verdict['recovered']}/{verdict['checked']} recovered "
            f"after restart"
        )
        for failure in verdict["failed"]:
            print(f"  failed : {json_mod.dumps(failure)}", file=sys.stderr)
        return 0 if verdict["recovered"] == verdict["checked"] else 1

    config = LoadConfig(
        host=args.host,
        port=args.port,
        rate=args.rate,
        duration_s=args.duration,
        deadline_ms=args.deadline_ms if args.deadline_ms > 0 else None,
        tenants=args.tenants,
        particles=args.particles,
        engines=parse_csv(args.engines),
        models=parse_csv(args.models),
        seed=args.seed,
        drain_timeout_s=args.drain_timeout,
        streaming=args.streaming,
        sessions=args.sessions,
        pushes=args.pushes,
        inject_kill_after_s=args.inject_worker_kill_after,
    )
    try:
        report = asyncio.run(run_load(config))
    except ConnectionRefusedError:
        print(f"loadgen: no server listening on {args.host}:{args.port}", file=sys.stderr)
        return 2
    print(report.summary())
    if args.json:
        Path(args.json).write_text(json_mod.dumps(report_as_json(report), indent=2) + "\n")
        print(f"report written to {args.json}")
    if args.record:
        path = record_bench_entry(report, path=args.record)
        print(f"load entry recorded into {path}")
    if not report.healthy():
        print(
            f"loadgen: contract violated — {report.unanswered} unanswered, "
            f"{report.unstructured_errors} unstructured errors",
            file=sys.stderr,
        )
        return 1
    return 0


def cmd_fuzz(args: argparse.Namespace) -> int:
    """Differential fuzzing: generate pairs, run every oracle, report failures."""
    import json

    from repro.fuzz import FuzzConfig, generate, run_case, shrink_case
    from repro.fuzz.oracles import render_failure, repro_command
    from repro.fuzz.shrinker import default_predicate

    config = FuzzConfig(
        particles=args.particles,
        check_workers=args.check_workers,
        allow_recursion=not args.no_recursion,
    )
    if args.seed is not None:
        seeds = [args.seed]
    else:
        seeds = list(range(args.seed_start, args.seed_start + args.seeds))

    failures = 0
    report_dir = Path(args.report_dir) if args.report_dir else None
    if report_dir is not None:
        report_dir.mkdir(parents=True, exist_ok=True)

    for count, seed in enumerate(seeds, 1):
        case = generate(seed, config)
        report = run_case(case, config)
        if report.violations:
            failures += 1
            shrunk = None
            if args.shrink:
                kinds = {v.kind for v in report.violations}
                shrunk = shrink_case(case, default_predicate(config, kinds))
            print(render_failure(case, report, config, shrunk))
            print()
            if report_dir is not None:
                payload = {
                    "seed": seed,
                    "violations": [v.describe() for v in report.violations],
                    "model_source": (shrunk or case).model_source,
                    "guide_source": (shrunk or case).guide_source,
                    "repro": repro_command(seed, config),
                    "metrics": report.metrics,
                }
                path = report_dir / f"counterexample_{seed}.json"
                path.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")
        if args.progress_every and count % args.progress_every == 0:
            print(f"[fuzz] {count}/{len(seeds)} seeds, {failures} failing")

    print(
        f"fuzz: {len(seeds)} seed(s), {failures} with violations"
        + (f" (reports in {report_dir})" if report_dir is not None and failures else "")
    )
    return 1 if failures else 0


def cmd_bench_run(args: argparse.Namespace) -> int:
    """Sweep the benchmark snapshot and write a per-run directory."""
    from repro.bench.runner import RunnerConfig, fast_config, run_sweep
    from repro.engine.loadgen import parse_csv

    if args.fast:
        config = fast_config(seed=args.seed)
    else:
        config = RunnerConfig(seed=args.seed)
    overrides = {}
    if args.particles:
        overrides["particles"] = tuple(int(p) for p in parse_csv(args.particles))
    if args.engines:
        overrides["engines"] = parse_csv(args.engines)
    if args.backends:
        overrides["backends"] = parse_csv(args.backends)
    if args.jits:
        overrides["jits"] = parse_csv(args.jits)
    if args.shards:
        overrides["shards"] = tuple(int(s) for s in parse_csv(args.shards))
    if args.repeats is not None:
        overrides["repeats"] = args.repeats
    if args.models:
        overrides["models"] = parse_csv(args.models)
    if overrides:
        config = dataclasses.replace(config, **overrides)

    out_dir = Path(args.out)
    progress = None if args.quiet else (lambda line: print(f"[bench] {line}"))
    snapshot_path = Path(args.snapshot) if args.snapshot else None
    document = run_sweep(config, out_dir, snapshot_path=snapshot_path, progress=progress)
    models = sorted({point["model"] for point in document["points"]})
    print(
        f"bench run: {len(document['points'])} sweep points over "
        f"{len(models)} models -> {out_dir}"
    )
    return 0


def cmd_bench_evaluate(args: argparse.Namespace) -> int:
    """Build scaling curves from a run directory and gate quality/speed."""
    import json

    from repro.bench.evaluate import (
        EvaluateConfig,
        baseline_payload,
        evaluate_run,
        load_baseline,
        record_report,
    )

    config = EvaluateConfig(
        quality_sigma=args.quality_sigma,
        speed_factor=args.speed_factor,
        min_wall_s=args.min_wall_ms / 1e3,
    )
    baseline = load_baseline(Path(args.baseline)) if args.baseline else None
    report, violations = evaluate_run(Path(args.run), config, baseline=baseline)
    print(
        f"bench evaluate: {report['curve_count']} curves over "
        f"{len(report['models'])} models (snapshot {report['snapshot']})"
    )
    if args.write_baseline:
        payload = baseline_payload(report["curves"], report["snapshot"])
        Path(args.write_baseline).write_text(
            json.dumps(payload, indent=2, sort_keys=True) + "\n", encoding="utf-8"
        )
        print(f"baseline written to {args.write_baseline}")
    if args.report:
        Path(args.report).write_text(
            json.dumps(report, indent=2, sort_keys=True) + "\n", encoding="utf-8"
        )
        print(f"report written to {args.report}")
    if not args.no_record:
        path = record_report(report)
        print(f"curves recorded into {path}")
    for violation in violations:
        print(f"VIOLATION {json.dumps(violation, sort_keys=True)}", file=sys.stderr)
    if violations:
        print(f"bench evaluate: FAILED ({len(violations)} violation(s))", file=sys.stderr)
        return 1
    print("bench evaluate: all gates passed")
    return 0


def cmd_bench_plot(args: argparse.Namespace) -> int:
    """Render per-model scaling-curve SVGs from a run directory."""
    from repro.bench.evaluate import evaluate_run
    from repro.bench.plots import plot_report

    report, _violations = evaluate_run(Path(args.run))
    out_dir = Path(args.out) if args.out else Path(args.run) / "plots"
    written = plot_report(report, out_dir)
    for name in written:
        print(f"bench plot: wrote {out_dir / name}")
    print(f"bench plot: {len(written)} figure(s) in {out_dir}")
    return 0


def cmd_bench_snapshot(args: argparse.Namespace) -> int:
    """Check (default) or regenerate the pinned benchmark snapshot."""
    from repro.bench.snapshot import default_snapshot_path, render_snapshot, write_snapshot

    path = Path(args.path) if args.path else default_snapshot_path()
    if args.write:
        write_snapshot(path)
        print(f"snapshot written to {path}")
        return 0
    expected = render_snapshot()
    try:
        actual = path.read_text(encoding="utf-8")
    except OSError as exc:
        print(f"bench snapshot: cannot read {path}: {exc}", file=sys.stderr)
        return 1
    if actual != expected:
        print(
            f"bench snapshot: {path} is stale — regenerate with "
            f"'repro bench snapshot --write' and review the diff",
            file=sys.stderr,
        )
        return 1
    print(f"bench snapshot: {path} matches the live code")
    return 0


def cmd_benchmarks(_args: argparse.Namespace) -> int:
    print(f"{'name':<12} {'selected':<9} {'inference':<9} {'LOC':>4}  description")
    for bench in all_benchmarks():
        loc = bench.model_loc if bench.expressible else 0
        print(
            f"{bench.name:<12} {'yes' if bench.selected else 'no':<9} "
            f"{bench.inference or '-':<9} {loc:>4}  {bench.description}"
        )
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro", description="Guide-types PPL command line"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_infer = sub.add_parser("infer-types", help="infer guide types for a program")
    p_infer.add_argument("model", help="path to a .gt source file")
    p_infer.set_defaults(func=cmd_infer_types)

    def add_pair_arguments(p: argparse.ArgumentParser) -> None:
        p.add_argument("model", help="path to the model source file")
        p.add_argument("guide", help="path to the guide source file")
        p.add_argument("--model-entry", default=None)
        p.add_argument("--guide-entry", default=None)
        p.add_argument("--latent", default="latent", help="latent channel name")

    p_check = sub.add_parser("check", help="check model/guide absolute continuity")
    add_pair_arguments(p_check)
    p_check.set_defaults(func=cmd_check)

    p_compile = sub.add_parser("compile", help="compile a pair to mini-Pyro Python")
    add_pair_arguments(p_compile)
    p_compile.add_argument("--output", "-o", default=None)
    p_compile.set_defaults(func=cmd_compile)

    def add_inference_arguments(p: argparse.ArgumentParser) -> None:
        p.add_argument("--obs", type=float, nargs="*", default=None,
                       help="observed values for the obs channel, in order")
        p.add_argument("--particles", type=int, default=None,
                       help="number of particles (preferred spelling)")
        p.add_argument("--samples", type=int, default=1000,
                       help="legacy alias for --particles")
        p.add_argument("--seed", type=int, default=0)
        p.add_argument("--force", action="store_true",
                       help="run even if the pair is not certified")
        p.add_argument("--backend", choices=["interp", "compiled"], default="interp",
                       help="particle runtime: the lockstep interpreter, or fused "
                            "batched kernels compiled per model/guide pair "
                            "(bitwise-identical results; falls back to interp "
                            "for recursive programs)")
        p.add_argument("--jit", choices=["none", "mega"], default="none",
                       help="compiled-backend tier: 'none' dispatches per-group "
                            "sub-kernels, 'mega' schedules the whole path tree "
                            "inside one emitted megakernel (bitwise-identical; "
                            "also compiles the SVI rescoring pass)")
        p.add_argument("--workers", type=int, default=1,
                       help="worker processes for sharded execution (1 = in-process). "
                            "Results depend on the shard plan, not the pool size — "
                            "but --shards defaults to one per worker, so pin it "
                            "when varying --workers for identical numbers")
        p.add_argument("--shards", type=int, default=None,
                       help="particle shards with independently derived RNG streams "
                            "(default: one per worker; results are a pure function "
                            "of seed, particles, and shards)")
        p.add_argument("--profile", action="store_true",
                       help="print a phase-time table after the run (session prepare, "
                            "kernel compile, per-engine phases, shard waves)")
        p.add_argument("--trace-out", default=None, metavar="PATH",
                       help="write the run's spans as Chrome trace_event JSON "
                            "(open in chrome://tracing or Perfetto; shard workers "
                            "appear as their own tracks)")

    p_is = sub.add_parser("run-is", help="run importance sampling on a pair")
    add_pair_arguments(p_is)
    add_inference_arguments(p_is)
    p_is.add_argument("--engine", choices=["vectorized", "sequential"],
                      default="vectorized",
                      help="particle runtime: lockstep arrays or the scalar loop")
    p_is.set_defaults(func=cmd_run_is)

    p_smc = sub.add_parser("run-smc", help="run Sequential Monte Carlo on a pair")
    add_pair_arguments(p_smc)
    add_inference_arguments(p_smc)
    p_smc.add_argument("--ess-threshold", type=float, default=0.5,
                       help="resample when ESS falls below this fraction of n")
    p_smc.add_argument("--no-rejuvenation", action="store_true",
                       help="disable the post-resampling MH rejuvenation move")
    p_smc.set_defaults(func=cmd_run_smc)

    p_svi = sub.add_parser("run-svi", help="fit the guide's parameters by SVI, then query the posterior")
    add_pair_arguments(p_svi)
    add_inference_arguments(p_svi)
    p_svi.add_argument("--engine", choices=["svi", "svi-fd"], default="svi",
                       help="batched score-function SVI or the sequential finite-difference path")
    p_svi.add_argument("--steps", type=int, default=30,
                       help="number of gradient steps")
    p_svi.add_argument("--optimizer", choices=["adam", "sgd"], default="adam")
    p_svi.add_argument("--lr", type=float, default=0.05, help="learning rate")
    p_svi.add_argument("--param", action="append", default=None, metavar="NAME=INIT",
                       help="initial value for a guide parameter (repeatable); "
                            "defaults to 0.0 per guide parameter")
    p_svi.add_argument("--constraint", action="append", default=None, metavar="NAME=KIND",
                       help="constraint transform for a parameter: real, positive, or unit "
                            "(simplex needs vector initial values, library API only)")
    p_svi.add_argument("--rao-blackwellize", action="store_true",
                       help="use per-site Rao-Blackwellized learning signals")
    p_svi.add_argument("--final-particles", type=int, default=None,
                       help="particles for the posterior pass through the fitted guide")
    p_svi.set_defaults(func=cmd_run_svi)

    p_serve = sub.add_parser(
        "serve",
        help="run the async batch-inference server (JSONL over TCP)",
    )
    p_serve.add_argument("--host", default="127.0.0.1")
    p_serve.add_argument("--port", type=int, default=7341)
    p_serve.add_argument("--workers", type=int, default=1,
                         help="worker processes in the shared shard pool")
    p_serve.add_argument("--batch-window-ms", type=float, default=2.0,
                         help="how long to hold a dispatch batch open so concurrent "
                              "requests can coalesce into one sharded run")
    p_serve.add_argument("--max-queue", type=int, default=256,
                         help="admitted requests allowed to wait for dispatch; "
                              "overflow is rejected immediately with code 'overloaded'")
    p_serve.add_argument("--max-batch", type=int, default=32,
                         help="requests per dispatch wave (bounds coalesced-wave memory)")
    p_serve.add_argument("--tenant-rate", type=float, default=None,
                         help="per-tenant admitted requests/second (token bucket; "
                              "default: quotas disabled)")
    p_serve.add_argument("--tenant-burst", type=float, default=None,
                         help="per-tenant burst capacity (default: max(1, tenant-rate))")
    p_serve.add_argument("--kernel-cache", type=int, default=None,
                         help="fused-kernel LRU capacity (default 64)")
    p_serve.add_argument("--session-cache", type=int, default=None,
                         help="prepared-session LRU capacity (default 64)")
    p_serve.add_argument("--session-ttl", type=float, default=600.0,
                         help="idle seconds before a streaming session expires "
                              "(answers 'session_expired'; 0 disables the TTL)")
    p_serve.add_argument("--max-sessions", type=int, default=256,
                         help="live streaming sessions process-wide; past the cap "
                              "the least-recently-used session is evicted "
                              "(checkpointed first when --checkpoint-dir is set)")
    p_serve.add_argument("--sessions-per-tenant", type=int, default=32,
                         help="live streaming sessions one tenant may hold "
                              "(opens beyond it fail with 'session_limit')")
    p_serve.add_argument("--checkpoint-dir", default=None, metavar="DIR",
                         help="directory for streaming-session checkpoints; "
                              "sessions then survive eviction and server "
                              "restarts (exact replay from seed + journal)")
    p_serve.set_defaults(func=cmd_serve)

    p_load = sub.add_parser(
        "loadgen",
        help="open-loop Poisson load generator against a running server",
    )
    p_load.add_argument("--host", default="127.0.0.1")
    p_load.add_argument("--port", type=int, default=7341)
    p_load.add_argument("--rate", type=float, default=50.0,
                        help="offered arrival rate in requests/second (Poisson)")
    p_load.add_argument("--duration", type=float, default=5.0,
                        help="seconds of arrivals to generate")
    p_load.add_argument("--deadline-ms", type=float, default=1000.0,
                        help="per-request deadline on the wire (<= 0 disables)")
    p_load.add_argument("--tenants", type=int, default=2,
                        help="distinct tenants to spread traffic across")
    p_load.add_argument("--particles", type=int, default=1000,
                        help="particles per request")
    p_load.add_argument("--engines", default="is",
                        help="comma-separated engines to cycle through")
    p_load.add_argument("--models", default="weight",
                        help="comma-separated benchmark models to cycle through")
    p_load.add_argument("--seed", type=int, default=0)
    p_load.add_argument("--drain-timeout", type=float, default=30.0,
                        help="seconds to wait for straggler responses after "
                             "the last arrival")
    p_load.add_argument("--json", default=None, metavar="PATH",
                        help="also write the report as JSON to PATH")
    p_load.add_argument("--record", default=None, metavar="PATH",
                        help="append a 'load' entry to BENCH_results.json at PATH")
    p_load.add_argument("--streaming", action="store_true",
                        help="drive session.open/push/query cycles instead of "
                             "one-shot infer requests (use --models stream_rw "
                             "for the growable streaming family)")
    p_load.add_argument("--sessions", type=int, default=4,
                        help="concurrent streaming sessions cycled through")
    p_load.add_argument("--pushes", type=int, default=None,
                        help="observations pushed per session before its query "
                             "(default: the model's own observation count)")
    p_load.add_argument("--inject-worker-kill-after", type=float, default=None,
                        metavar="SECONDS",
                        help="failure injection: SIGKILL one shard-pool worker "
                             "this many seconds into the run (loadgen and "
                             "server must share a host)")
    p_load.add_argument("--verify-sessions", default=None, metavar="PATH",
                        help="instead of generating load, re-query the "
                             "sessions recorded in a previous --json report "
                             "and exit non-zero unless all recovered")
    p_load.set_defaults(func=cmd_loadgen)

    p_fuzz = sub.add_parser(
        "fuzz",
        help="differential fuzzing: random well-typed pairs through every "
             "engine/backend/shard configuration",
    )
    p_fuzz.add_argument("--seeds", type=int, default=50,
                        help="number of consecutive seeds to fuzz")
    p_fuzz.add_argument("--seed-start", type=int, default=0,
                        help="first seed of the range")
    p_fuzz.add_argument("--seed", type=int, default=None,
                        help="fuzz exactly one seed (reproduction mode)")
    p_fuzz.add_argument("--particles", type=int, default=384,
                        help="particle count per differential run")
    p_fuzz.add_argument("--shrink", action="store_true",
                        help="greedily minimise any counterexample before reporting")
    p_fuzz.add_argument("--check-workers", action="store_true",
                        help="also verify process-pool parity (spawns a worker pool)")
    p_fuzz.add_argument("--no-recursion", action="store_true",
                        help="generate only non-recursive programs")
    p_fuzz.add_argument("--report-dir", default=None,
                        help="write one JSON counterexample file per failing seed")
    p_fuzz.add_argument("--progress-every", type=int, default=25,
                        help="print a progress line every N seeds (0 = quiet)")
    p_fuzz.set_defaults(func=cmd_fuzz)

    p_bench = sub.add_parser("benchmarks", help="list the bundled benchmark programs")
    p_bench.set_defaults(func=cmd_benchmarks)

    p_suite = sub.add_parser(
        "bench",
        help="versioned benchmark suite: snapshot sweeps, scaling curves, "
             "regression gates",
    )
    suite_sub = p_suite.add_subparsers(dest="bench_command", required=True)

    p_run = suite_sub.add_parser(
        "run", help="sweep the pinned snapshot across engines/backends/particles"
    )
    p_run.add_argument("--out", default="bench_runs/latest", metavar="DIR",
                       help="per-run output directory (config/results/metrics)")
    p_run.add_argument("--seed", type=int, default=0,
                       help="root seed; every sweep point derives its own seed "
                            "from this and its identity")
    p_run.add_argument("--fast", action="store_true",
                       help="CI smoke shape: small particle ladder, one shard "
                            "count, one repeat, smallest family sizes")
    p_run.add_argument("--particles", default=None,
                       help="comma-separated particle ladder override")
    p_run.add_argument("--engines", default=None,
                       help="comma-separated engine override (default is,smc,svi)")
    p_run.add_argument("--backends", default=None,
                       help="comma-separated backend override (default interp,compiled)")
    p_run.add_argument("--jits", default=None,
                       help="comma-separated compiled-backend JIT tiers to sweep "
                            "(default none,mega; interp points ignore this)")
    p_run.add_argument("--shards", default=None,
                       help="comma-separated shard-count override")
    p_run.add_argument("--repeats", type=int, default=None,
                       help="best-of-N wall-time repeats per point")
    p_run.add_argument("--models", default=None,
                       help="comma-separated snapshot instance filter "
                            "(e.g. weight,hmm_chain/8)")
    p_run.add_argument("--snapshot", default=None, metavar="PATH",
                       help="snapshot file to sweep (default bench/snapshots/v1.json)")
    p_run.add_argument("--quiet", action="store_true",
                       help="suppress per-point progress lines")
    p_run.set_defaults(func=cmd_bench_run)

    p_eval = suite_sub.add_parser(
        "evaluate",
        help="render scaling curves from a run and gate quality/speed regressions",
    )
    p_eval.add_argument("--run", default="bench_runs/latest", metavar="DIR",
                        help="run directory written by 'bench run'")
    p_eval.add_argument("--baseline", default=None, metavar="PATH",
                        help="pinned baseline curves; enables the speed gate")
    p_eval.add_argument("--write-baseline", default=None, metavar="PATH",
                        help="write this run's curves as a new baseline")
    p_eval.add_argument("--report", default=None, metavar="PATH",
                        help="also write the full evaluation report as JSON")
    p_eval.add_argument("--quality-sigma", type=float, default=5.0,
                        help="Monte-Carlo slack multiplier for the quality gate")
    p_eval.add_argument("--speed-factor", type=float, default=1.75,
                        help="maximum geometric-mean wall-time ratio vs baseline")
    p_eval.add_argument("--min-wall-ms", type=float, default=5.0,
                        help="points faster than this in both runs skip the speed gate")
    p_eval.add_argument("--no-record", action="store_true",
                        help="do not record curves into BENCH_results.json")
    p_eval.set_defaults(func=cmd_bench_evaluate)

    p_plot = suite_sub.add_parser(
        "plot", help="render one scaling-curve SVG per model from a run"
    )
    p_plot.add_argument("--run", default="bench_runs/latest", metavar="DIR",
                        help="run directory written by 'bench run'")
    p_plot.add_argument("--out", default=None, metavar="DIR",
                        help="output directory for SVGs (default <run>/plots)")
    p_plot.set_defaults(func=cmd_bench_plot)

    p_snap = suite_sub.add_parser(
        "snapshot", help="check (default) or regenerate the pinned snapshot"
    )
    p_snap.add_argument("--write", action="store_true",
                        help="regenerate the snapshot file from the live code")
    p_snap.add_argument("--path", default=None,
                        help="snapshot file (default bench/snapshots/v1.json)")
    p_snap.set_defaults(func=cmd_bench_snapshot)

    return parser


def main(argv: Optional[list[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except FileNotFoundError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    sys.exit(main())
