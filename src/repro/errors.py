"""Exception hierarchy used across the guide-types reproduction.

Every user-facing error raised by the library derives from :class:`ReproError`
so that callers can catch all library failures with a single ``except``
clause.  Sub-hierarchies distinguish the phase that failed: parsing, basic
type checking, guide-type inference, trace validation, evaluation, coroutine
scheduling, compilation, and inference.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` package."""


class ParseError(ReproError):
    """Raised when the surface-syntax parser rejects a program.

    Attributes
    ----------
    line, column:
        1-based source position of the offending token, when known.
    """

    def __init__(self, message: str, line: int | None = None, column: int | None = None):
        self.line = line
        self.column = column
        if line is not None:
            message = f"{message} (at line {line}, column {column})"
        super().__init__(message)


class LexError(ParseError):
    """Raised when the lexer encounters an invalid character or literal."""


class TypeError_(ReproError):
    """Base class for type-system failures (named with a trailing underscore
    to avoid shadowing the builtin :class:`TypeError`)."""


class BasicTypeError(TypeError_):
    """Raised when the simply-typed (deterministic) fragment fails to check."""


class GuideTypeError(TypeError_):
    """Raised when guide-type inference fails.

    Typical causes: the two branches of a conditional disagree on the
    protocol of the non-subject channel, a command communicates on a channel
    the procedure does not declare, or a procedure call's signature cannot be
    instantiated consistently.
    """


class TraceTypeMismatch(ReproError):
    """Raised when a guidance trace does not satisfy a guide type (σ : A fails)."""


class TraceExhausted(TraceTypeMismatch):
    """Raised when a replayed trace ends before the program stops consuming it.

    A strict sub-case of :class:`TraceTypeMismatch`: the trace was fine as far
    as it went, the program simply demanded more messages.  Streaming sessions
    rely on this distinction — a model that outruns the observations pushed so
    far is *buffering* (waiting for more data), not broken — so both runtimes
    (the lockstep interpreter and the compiled batched kernels) raise this
    subclass at trace-exhaustion sites.
    """


class EvaluationError(ReproError):
    """Raised when big-step evaluation of a command gets stuck.

    Evaluation gets stuck when the supplied guidance traces do not have the
    shape the command expects (e.g. the command needs a sample message but
    the trace starts with a branch selection), or when an expression fails to
    evaluate (unbound variable, ill-typed primitive application).
    """


class ZeroWeightTrace(EvaluationError):
    """Raised (optionally) when a trace evaluates to weight zero.

    The big-step semantics gives weight zero to traces whose branch
    selections contradict the evaluated predicates.  Engines that must not
    silently continue with impossible traces can request this exception
    instead of a zero weight.
    """


class ChannelProtocolError(ReproError):
    """Raised by the coroutine scheduler when message directions mismatch.

    This corresponds to a violation of the guidance protocol at run time:
    for example, both endpoints of a channel trying to send, or a coroutine
    finishing while its partner still expects messages.
    """


class CompilationError(ReproError):
    """Raised by the compiler when a program cannot be translated to Python."""


class InferenceError(ReproError):
    """Raised by inference engines on unrecoverable failures (e.g. all
    importance weights are zero, or the proposal cannot reach the posterior's
    support)."""


class UnsupportedModelError(ReproError):
    """Raised by the trace-types baseline when a program falls outside the
    fragment it supports (general recursion, branch-dependent sample sets,
    stochastic memoization)."""
