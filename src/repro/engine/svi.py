"""Vectorized stochastic variational inference on the lockstep runtime.

The finite-difference optimiser (:func:`repro.inference.vi.svi`) evaluates
``2·dim + 1`` ELBOs per step, each running ``num_particles`` particles
one-by-one through the coroutine interpreter.  This module replaces that
inner loop with the vectorized particle engine:

* **one lockstep pass** draws all guide traces for a step and yields the
  per-particle ELBO terms ``f_i = log w_m − log w_g`` as columns
  (:func:`estimate_elbo_batched`);
* **score-function (REINFORCE) gradients** avoid re-sampling entirely — the
  gradient of the ELBO with respect to the guide parameters is

  .. math:: \\nabla_θ \\mathrm{ELBO} = E_{σ∼q_θ}[(f(σ) - b)\\,\\nabla_θ \\log q_θ(σ)],

  valid for any baseline ``b`` independent of σ (a leave-one-out mean here),
  and the per-particle score ``∇_θ log q_θ(σ_i)`` is measured by *rescoring*
  the recorded control-flow groups under ``θ ± ε`` — two vectorized replay
  passes per coordinate, no fresh randomness
  (:meth:`~repro.engine.vectorize.ParticleVectorizer.rescore_group`);
* **optional per-site Rao-Blackwellization** subtracts from each site's
  learning signal every model/guide log-term accrued *before* the site in
  protocol order.  Those terms are measurable with respect to the earlier
  samples, so ``E[∇_θ log q_k · (\\text{prefix}_k)] = 0`` and dropping them
  only removes variance, never bias;
* constraints are handled by :class:`~repro.engine.params.ParamStore`
  transforms (softplus positivity, softmax simplices) instead of the old
  ``theta_projection`` clamp, and the optimisers are the Adam/SGD
  implementations shared with the compiled mini-Pyro runtime
  (:mod:`repro.minipyro.infer.optim`).

The module registers two engines: ``svi`` (this vectorized path) and
``svi-fd`` (the sequential finite-difference fallback), both answering
posterior queries by importance-reweighting a final particle pass through
the *fitted* guide.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.xp import np

from repro.core import ast
from repro.core.semantics import traces as tr
from repro.engine.api import (
    EngineResult,
    InferenceEngine,
    InferenceRequest,
    register_engine,
)
from repro.engine.params import ParamStore, store_from_inits
from repro.engine.vectorize import ParticleVectorizer, vectorized_importance
from repro.errors import ChannelProtocolError, EvaluationError, InferenceError
from repro.inference.vi import ELBOEstimate
from repro.minipyro.infer.optim import Adam, Optimizer, SGD
from repro.obs import REGISTRY, span
from repro.utils.rng import ensure_rng

DEFAULT_SCORE_EPSILON = 1e-4

_SVI_PHASE_SECONDS = REGISTRY.histogram(
    "repro_svi_phase_seconds",
    "Wall time of one SVI phase per step: the lockstep sampling pass, or the "
    "full set of ±ε rescoring replays behind the score-function gradient.",
    labels=("phase",),
)
_SVI_STEPS = REGISTRY.counter(
    "repro_svi_steps_total",
    "SVI optimisation steps taken (one batched gradient estimate each).",
)


def make_optimizer(name: str, learning_rate: float) -> Optimizer:
    """Instantiate one of the shared parameter-store optimisers by name."""
    if name == "adam":
        return Adam(lr=learning_rate)
    if name == "sgd":
        return SGD(lr=learning_rate)
    raise InferenceError(f"unknown optimizer {name!r} (known: adam, sgd)")


def guide_entry_params(guide_program: ast.Program, guide_entry: str) -> Tuple[str, ...]:
    """The guide entry procedure's parameter names, in declaration order."""
    return tuple(guide_program.procedure(guide_entry).params)


# ---------------------------------------------------------------------------
# Batched ELBO estimation
# ---------------------------------------------------------------------------


def estimate_elbo_batched(
    model_program: ast.Program,
    guide_program: ast.Program,
    model_entry: str,
    guide_entry: str,
    obs_trace: Optional[Sequence[tr.Message]],
    num_particles: int,
    rng=None,
    model_args: Tuple[object, ...] = (),
    guide_args: Tuple[object, ...] = (),
    latent_channel: str = "latent",
    obs_channel: str = "obs",
    backend: str = "interp",
    jit: str = "none",
    session=None,
    workers: int = 1,
    shards: Optional[int] = None,
) -> ELBOEstimate:
    """Monte-Carlo ELBO with all particles drawn in one lockstep pass.

    Estimator-identical to :func:`repro.inference.vi.estimate_elbo` (same
    per-particle terms, ``-inf`` as soon as any particle leaves the model's
    support); only the execution strategy differs.  ``backend="compiled"``
    draws the batch through the fused kernel when the pair supports it, and
    ``workers``/``shards`` distribute the batch over the sharded layer.
    """
    from repro.engine.backend import make_particle_runner

    vectorizer = make_particle_runner(
        model_program,
        guide_program,
        model_entry,
        guide_entry,
        obs_trace=obs_trace,
        model_args=model_args,
        guide_args=guide_args,
        latent_channel=latent_channel,
        obs_channel=obs_channel,
        backend=backend,
        jit=jit,
        session=session,
        workers=workers,
        shards=shards,
        # The ELBO needs only the per-particle weight terms.
        trim_site_scores=True,
    )
    run = vectorizer.run(num_particles, ensure_rng(rng))
    terms = run.log_weights()
    value = float(np.mean(terms)) if bool(np.all(np.isfinite(terms))) else -math.inf
    return ELBOEstimate(value=value, particle_terms=tuple(float(t) for t in terms))


# ---------------------------------------------------------------------------
# Score-function gradients over rescored control-flow groups
# ---------------------------------------------------------------------------


@dataclass
class ScoreGradient:
    """One step's ELBO estimate and score-function parameter gradients."""

    elbo: ELBOEstimate
    #: Gradient per named parameter, in *unconstrained* space, shaped like the
    #: store's values.
    grads: Dict[str, np.ndarray]
    #: Particles whose ELBO term was non-finite (outside the model's support).
    num_infinite: int
    #: Worst-case count of additional particles dropped from a coordinate's
    #: gradient because the perturbed rescore was non-finite.
    num_dropped: int

    @property
    def finite_mean(self) -> float:
        """Mean ELBO term over the in-support particles (``-inf`` if none)."""
        terms = np.asarray(self.elbo.particle_terms)
        finite = terms[np.isfinite(terms)]
        return float(np.mean(finite)) if finite.size else -math.inf


def elbo_and_score_gradient(
    model_program: ast.Program,
    guide_program: ast.Program,
    model_entry: str,
    guide_entry: str,
    store: ParamStore,
    obs_trace: Optional[Sequence[tr.Message]],
    num_particles: int,
    rng=None,
    model_args: Tuple[object, ...] = (),
    latent_channel: str = "latent",
    obs_channel: str = "obs",
    rao_blackwellize: bool = False,
    score_epsilon: float = DEFAULT_SCORE_EPSILON,
    backend: str = "interp",
    jit: str = "none",
    session=None,
    workers: int = 1,
    shards: Optional[int] = None,
) -> ScoreGradient:
    """Estimate the ELBO and its score-function gradient in one batch.

    One vectorized sampling pass draws every particle; each unconstrained
    coordinate then costs two vectorized *rescoring* passes (at ``θ ± ε``)
    over the recorded control-flow groups to measure the per-particle score
    ``∂_θ log q_θ(σ_i)`` — no additional sampling, so the gradient uses
    exactly the particles that produced the ELBO estimate.

    Particles outside the model's support (``f_i = −∞``) carry no usable
    learning signal and are excluded from the gradient (their count is
    reported via ``num_infinite``); likewise any particle whose perturbed
    rescore is non-finite, and any group whose perturbed replay no longer
    matches its recorded message sequence (a parameter-dependent branch
    flipped under the perturbation), is dropped from that coordinate only.
    A pure parameter branch that flips *without* changing the message
    sequence is undetectable here — its score then includes the discrete
    arm change, which is the correct (if large) sensitivity at such a
    boundary but makes gradients near branch thresholds high-variance.
    """
    rng = ensure_rng(rng)
    param_names = guide_entry_params(guide_program, guide_entry)

    from repro.engine.backend import make_particle_runner

    def vectorizer_at(
        at: ParamStore,
        at_backend: str = "interp",
        at_jit: str = "none",
        at_shards: Optional[int] = 1,
    ) -> ParticleVectorizer:
        # The sampling pass honours the backend and shard choices.  The ±ε
        # *rescoring* passes run in-process either way (rescore_group is
        # replay machinery that consumes no randomness, so there is nothing
        # to shard): under ``jit="mega"`` they replay through the compiled
        # rescore pass, otherwise through the interpreter.
        return make_particle_runner(
            model_program,
            guide_program,
            model_entry,
            guide_entry,
            obs_trace=obs_trace,
            model_args=model_args,
            guide_args=at.guide_args(param_names),
            latent_channel=latent_channel,
            obs_channel=obs_channel,
            backend=at_backend,
            jit=at_jit,
            session=session,
            workers=workers,
            shards=at_shards,
            # The guide-side ledgers feed Rao-Blackwellized signals only;
            # without them the gradient uses whole-trace rescores.
            trim_site_scores=not rao_blackwellize,
        )

    # Rescoring tier: the megakernel ships a compiled group-rescoring pass
    # (bitwise-identical to the interpretive replay), so the ±ε vectorizers
    # reuse the compiled backend there.  The fused tier has no compiled
    # rescore — those requests keep the interpretive replay.
    if backend == "compiled" and jit == "mega":
        rescore_backend, rescore_jit = "compiled", "mega"
    else:
        rescore_backend, rescore_jit = "interp", "none"

    sample_started = time.perf_counter()
    with span("svi.sample", particles=num_particles):
        run = vectorizer_at(store, backend, jit, shards).run(num_particles, rng)
    _SVI_PHASE_SECONDS.labels(phase="sample").observe(
        time.perf_counter() - sample_started
    )
    f = run.log_weights()
    finite = np.isfinite(f)
    num_finite = int(finite.sum())
    value = float(np.mean(f)) if num_finite == f.size else -math.inf
    elbo = ELBOEstimate(value=value, particle_terms=tuple(float(t) for t in f))

    grads = {
        name: np.zeros_like(np.asarray(store.unconstrained_dict()[name], dtype=float))
        for name in store.names()
    }
    if store.size == 0 or num_finite < 2:
        return ScoreGradient(elbo, grads, f.size - num_finite, 0)

    # Leave-one-out baseline over the in-support particles: independent of
    # each particle's own draw, so E[s_i · b_i] = 0 and the estimator stays
    # unbiased while the variance of (f - b) collapses.
    baseline = np.zeros(f.size)
    total = float(f[finite].sum())
    baseline[finite] = (total - f[finite]) / (num_finite - 1)

    num_dropped = 0
    eps = float(score_epsilon)
    rescore_started = time.perf_counter()
    with span("svi.rescore", particles=num_particles):
        for name, index in store.coordinates():
            plus = vectorizer_at(
                store.perturbed(name, index, +eps), rescore_backend, rescore_jit
            )
            minus = vectorizer_at(
                store.perturbed(name, index, -eps), rescore_backend, rescore_jit
            )
            contrib = np.zeros(f.size)
            valid = finite.copy()
            with np.errstate(invalid="ignore"):
                for leaf in run.leaves:
                    try:
                        res_plus = plus.rescore_group(leaf)
                        res_minus = minus.rescore_group(leaf)
                    except (ChannelProtocolError, EvaluationError):
                        # The perturbed guide no longer follows the recorded
                        # message sequence (a parameter-dependent branch
                        # flipped across the ±ε boundary): this group
                        # contributes nothing to this coordinate's gradient.
                        valid[leaf.indices] = False
                        continue
                    if rao_blackwellize and leaf.guide_site_scores is not None:
                        leaf_contrib, leaf_valid = _rao_blackwell_contrib(
                            leaf, res_plus, res_minus,
                            f[leaf.indices], baseline[leaf.indices],
                            eps, latent_channel,
                        )
                    else:
                        scores = (
                            res_plus.log_weights["guide"] - res_minus.log_weights["guide"]
                        ) / (2.0 * eps)
                        leaf_contrib = scores * (f[leaf.indices] - baseline[leaf.indices])
                        leaf_valid = np.isfinite(scores)
                    contrib[leaf.indices] = np.where(leaf_valid, leaf_contrib, 0.0)
                    valid[leaf.indices] &= leaf_valid
            kept = valid & finite
            num_kept = int(kept.sum())
            num_dropped = max(num_dropped, num_finite - num_kept)
            coordinate_grad = float(np.mean(contrib[kept])) if num_kept else 0.0
            target = grads[name]
            if target.ndim == 0:
                grads[name] = np.asarray(coordinate_grad)
            else:
                target.flat[index] = coordinate_grad
    _SVI_PHASE_SECONDS.labels(phase="rescore").observe(
        time.perf_counter() - rescore_started
    )
    return ScoreGradient(elbo, grads, f.size - num_finite, num_dropped)


def _rao_blackwell_contrib(
    leaf,
    res_plus,
    res_minus,
    f_leaf: np.ndarray,
    baseline_leaf: np.ndarray,
    eps: float,
    latent_channel: str,
) -> Tuple[np.ndarray, np.ndarray]:
    """Per-site score contributions with prefix terms removed.

    For latent site ``k`` the learning signal is ``f − Σ_{j<k}(m_j − g_j)``:
    the model prior and guide entropy terms of *earlier* latent sites are
    functions of ``z_{<k}`` alone, so their expectation against site ``k``'s
    score is zero and removing them is pure variance reduction.  Model
    observation terms stay in every site's signal (their protocol position
    relative to the site is not tracked, and keeping independent terms costs
    variance but never bias).
    """
    guide0 = [s for ch, s in leaf.guide_site_scores if ch == latent_channel]
    model0 = [s for ch, s in leaf.model_site_scores if ch == latent_channel]
    plus = [s for ch, s in res_plus.site_scores["guide"] if ch == latent_channel]
    minus = [s for ch, s in res_minus.site_scores["guide"] if ch == latent_channel]
    if not (len(guide0) == len(model0) == len(plus) == len(minus)):
        # Site ledgers disagree (should not happen for a replayed group):
        # fall back to the total-score estimator for this group.
        scores = (res_plus.log_weights["guide"] - res_minus.log_weights["guide"]) / (2.0 * eps)
        return scores * (f_leaf - baseline_leaf), np.isfinite(scores)

    contrib = np.zeros_like(f_leaf)
    valid = np.ones(f_leaf.shape, dtype=bool)
    prefix = np.zeros_like(f_leaf)
    for k in range(len(guide0)):
        site_score = (plus[k] - minus[k]) / (2.0 * eps)
        contrib = contrib + site_score * (f_leaf - prefix - baseline_leaf)
        valid &= np.isfinite(site_score)
        prefix = prefix + (model0[k] - guide0[k])
    return contrib, valid


# ---------------------------------------------------------------------------
# The SVI driver
# ---------------------------------------------------------------------------


@dataclass
class VectorizedSVIResult:
    """The trajectory of one vectorized SVI fit."""

    store: ParamStore
    #: Per-step mean ELBO term over in-support particles (``-inf`` when no
    #: particle landed in the model's support that step).
    elbo_history: List[float] = field(default_factory=list)
    #: Per-step fitted parameters in constrained space.
    param_history: List[Dict[str, object]] = field(default_factory=list)
    grad_norm_history: List[float] = field(default_factory=list)
    #: Per-step count of particles outside the model's support.
    num_infinite_history: List[int] = field(default_factory=list)

    @property
    def num_steps(self) -> int:
        return len(self.elbo_history)

    @property
    def final_elbo(self) -> float:
        if not self.elbo_history:
            raise InferenceError("SVI has not taken any steps")
        return self.elbo_history[-1]

    def fitted_params(self) -> Dict[str, object]:
        return self.store.constrained_values()


def fit_svi(
    model_program: ast.Program,
    guide_program: ast.Program,
    model_entry: str,
    guide_entry: str,
    store: ParamStore,
    obs_trace: Optional[Sequence[tr.Message]],
    num_steps: int,
    num_particles: int = 64,
    optimizer: Optional[Optimizer] = None,
    rng=None,
    model_args: Tuple[object, ...] = (),
    latent_channel: str = "latent",
    obs_channel: str = "obs",
    rao_blackwellize: bool = False,
    score_epsilon: float = DEFAULT_SCORE_EPSILON,
    grad_clip_norm: Optional[float] = 10.0,
    backend: str = "interp",
    jit: str = "none",
    session=None,
    workers: int = 1,
    shards: Optional[int] = None,
) -> VectorizedSVIResult:
    """Maximise the ELBO with batched score-function gradient ascent.

    The ``store`` is updated in place (and also returned inside the result);
    constraints are enforced by its transforms, so no projection/clamping
    happens between steps.  Steps whose batch has fewer than two in-support
    particles leave the parameters untouched — stepping on a gradient
    estimated from nothing (the failure mode of the old finite-difference
    path) is never an improvement.
    """
    if num_steps < 0:
        raise InferenceError("num_steps must be non-negative")
    if num_particles <= 1:
        raise InferenceError("vectorized SVI needs at least 2 particles per step")
    rng = ensure_rng(rng)
    optimizer = optimizer if optimizer is not None else Adam(lr=0.05)
    result = VectorizedSVIResult(store=store)

    for _ in range(num_steps):
        _SVI_STEPS.inc()
        estimate = elbo_and_score_gradient(
            model_program,
            guide_program,
            model_entry,
            guide_entry,
            store,
            obs_trace,
            num_particles,
            rng=rng,
            model_args=model_args,
            latent_channel=latent_channel,
            obs_channel=obs_channel,
            rao_blackwellize=rao_blackwellize,
            score_epsilon=score_epsilon,
            backend=backend,
            jit=jit,
            session=session,
            workers=workers,
            shards=shards,
        )
        result.elbo_history.append(estimate.finite_mean)
        result.num_infinite_history.append(estimate.num_infinite)

        num_finite = num_particles - estimate.num_infinite
        if store.size == 0 or num_finite < 2:
            result.grad_norm_history.append(0.0)
            result.param_history.append(store.constrained_values())
            continue

        grads = estimate.grads
        flat = np.concatenate([np.asarray(g, dtype=float).reshape(-1) for g in grads.values()])
        norm = float(np.linalg.norm(flat))
        if grad_clip_norm is not None and norm > grad_clip_norm:
            scale = grad_clip_norm / norm
            grads = {name: g * scale for name, g in grads.items()}
        result.grad_norm_history.append(norm)
        optimizer.update(store.unconstrained_dict(), grads)
        result.param_history.append(store.constrained_values())

    return result


# ---------------------------------------------------------------------------
# Engine registration
# ---------------------------------------------------------------------------


def _final_particle_count(request: InferenceRequest) -> int:
    """Particles for the posterior pass (defaults to the fit batch size)."""
    if request.final_particles is None:
        return request.num_particles
    if request.final_particles <= 0:
        raise InferenceError("final_particles must be positive")
    return request.final_particles


def _store_from_request(
    guide_program: ast.Program, guide_entry: str, request: InferenceRequest
) -> ParamStore:
    """Build the variational parameter store an inference request describes.

    ``request.guide_params`` maps guide procedure parameters to constrained
    initial values; when given it must cover the guide entry's parameters
    exactly (missing or extra names are typos we refuse to guess around).
    An absent/empty mapping yields an empty store: the guide runs fixed at
    ``request.guide_args`` and no optimisation steps are taken.
    """
    if not request.guide_params:
        return ParamStore()
    store = store_from_inits(request.guide_params, request.param_constraints)
    param_names = guide_entry_params(guide_program, guide_entry)
    missing = [p for p in param_names if p not in store]
    extra = sorted(set(store.names()) - set(param_names))
    if missing or extra:
        raise InferenceError(
            f"guide_params must name exactly the guide entry's parameters "
            f"{list(param_names)}; missing {missing}, unexpected {extra}"
        )
    return store


class SVIEngineResult(EngineResult):
    """Posterior queries answered by a particle pass through the fitted guide."""

    def __init__(self, raw, importance_result, engine_name: str):
        super().__init__(raw)
        self._importance = importance_result
        self._engine_name = engine_name

    @property
    def final_pass(self):
        """The importance result of the posterior pass through the fitted guide.

        Exposed for differential testing (the fuzz harness compares the
        pass's weighted population against the other engines' populations).
        """
        return self._importance

    def posterior_mean(self, site_index: int) -> float:
        return self._importance.posterior_expectation_of_site(site_index)

    def log_evidence(self) -> Optional[float]:
        return float(self._importance.log_evidence())

    def effective_sample_size(self) -> Optional[float]:
        return float(self._importance.effective_sample_size())

    def diagnostics(self) -> Dict[str, object]:
        raw = self.raw
        history = list(getattr(raw, "elbo_history", []))
        out: Dict[str, object] = {
            "engine": self._engine_name,
            "num_steps": len(history),
            "elbo_history": history,
            "fitted_params": (
                raw.fitted_params() if hasattr(raw, "fitted_params") else {}
            ),
        }
        if hasattr(raw, "num_infinite_history"):
            out["num_infinite_history"] = list(raw.num_infinite_history)
        run = getattr(self._importance, "run", None)
        if run is not None:
            out["backend"] = run.backend
            out["jit"] = getattr(run, "jit", "none")
            reason = getattr(run, "fallback_reason", None)
            if reason is not None:
                out["fallback_reason"] = reason
        return out


class VectorizedSVIEngine(InferenceEngine):
    """Batched score-function SVI with sharded sampling passes."""

    name = "svi"
    description = "batched score-function SVI on the lockstep particle runtime"

    def run(self, session, request: InferenceRequest) -> EngineResult:
        """Fit the guide's parameters, then answer queries through the fit."""
        rng = ensure_rng(request.seed)
        store = _store_from_request(session.guide_program, session.guide_entry, request)
        param_names = guide_entry_params(session.guide_program, session.guide_entry)
        obs_trace = request.resolved_obs_trace()

        fit = fit_svi(
            session.model_program,
            session.guide_program,
            session.model_entry,
            session.guide_entry,
            store,
            obs_trace,
            num_steps=request.num_steps if store.size else 0,
            num_particles=request.num_particles,
            optimizer=make_optimizer(request.optimizer, request.learning_rate),
            rng=rng,
            model_args=request.model_args,
            latent_channel=session.latent_channel,
            obs_channel=session.obs_channel,
            rao_blackwellize=request.rao_blackwellize,
            score_epsilon=request.score_epsilon,
            session=session,
            **request.runner_options(),
        )
        final_args = store.guide_args(param_names) if store.size else request.guide_args
        importance = vectorized_importance(
            session.model_program,
            session.guide_program,
            session.model_entry,
            session.guide_entry,
            obs_trace=obs_trace,
            num_particles=_final_particle_count(request),
            rng=rng,
            model_args=request.model_args,
            guide_args=final_args,
            latent_channel=session.latent_channel,
            obs_channel=session.obs_channel,
            session=session,
            **request.runner_options(),
        )
        return SVIEngineResult(fit, importance, self.name)


class FiniteDifferenceSVIEngine(InferenceEngine):
    """The sequential finite-difference SVI reference path."""

    name = "svi-fd"
    description = "sequential finite-difference SVI (reference path)"

    def run(self, session, request: InferenceRequest) -> EngineResult:
        """Fit by finite differences (ignores backend/shard controls)."""
        from repro.inference.importance import importance_sampling
        from repro.inference.vi import svi as finite_difference_svi

        if request.rao_blackwellize:
            raise InferenceError(
                "rao_blackwellize requires the per-site score decomposition of "
                "the vectorized 'svi' engine; finite differences have none"
            )
        rng = ensure_rng(request.seed)
        store = _store_from_request(session.guide_program, session.guide_entry, request)
        param_names = guide_entry_params(session.guide_program, session.guide_entry)
        obs_trace = request.resolved_obs_trace()

        fit = None
        if store.size:
            def family(theta: np.ndarray):
                at = store.copy()
                at.load_vector(theta)
                return session.guide_program, session.guide_entry, at.guide_args(param_names)

            fit = finite_difference_svi(
                session.model_program,
                family,
                theta0=store.vector(),
                model_entry=session.model_entry,
                obs_trace=obs_trace,
                num_steps=request.num_steps,
                num_particles=request.num_particles,
                learning_rate=request.learning_rate,
                rng=rng,
                model_args=request.model_args,
                latent_channel=session.latent_channel,
                obs_channel=session.obs_channel,
                optimizer=make_optimizer(request.optimizer, request.learning_rate),
            )
            store.load_vector(fit.theta)

        final_args = store.guide_args(param_names) if store.size else request.guide_args
        importance = importance_sampling(
            session.model_program,
            session.guide_program,
            session.model_entry,
            session.guide_entry,
            obs_trace=obs_trace,
            num_samples=_final_particle_count(request),
            rng=rng,
            model_args=request.model_args,
            guide_args=final_args,
            latent_channel=session.latent_channel,
            obs_channel=session.obs_channel,
        )
        raw = _FiniteDifferenceRaw(store, fit.elbo_history if fit is not None else [])
        return SVIEngineResult(raw, importance, self.name)


@dataclass
class _FiniteDifferenceRaw:
    """Adapter giving the finite-difference fit the vectorized result surface."""

    store: ParamStore
    elbo_history: List[float]

    def fitted_params(self) -> Dict[str, object]:
        return self.store.constrained_values()


register_engine(VectorizedSVIEngine())
register_engine(FiniteDifferenceSVIEngine())
