"""Vectorized particle engine: lockstep multi-particle inference runtimes.

The :mod:`repro.engine` subsystem executes N particles (or chains)
simultaneously over NumPy arrays instead of N sequential interpreter runs:

``batched``
    Distributions over a particle axis — one family, per-particle parameters
    — resolving a whole sample site with a single NumPy call.
``vectorize``
    The lockstep runtime: a vectorized expression evaluator, command
    interpreter, and channel scheduler that run a model/guide pair over a
    particle axis, splitting the particle set into control-flow groups when
    branches diverge (so recursive models still execute exactly).
``smc``
    A Sequential Monte Carlo engine (systematic resampling, ESS-triggered
    independence-MH rejuvenation) built on the vectorized runtime.
``params``
    Constrained variational parameters: softplus/sigmoid/softmax transforms
    and the :class:`ParamStore` the optimisers update in place.
``svi``
    Batched stochastic variational inference: lockstep ELBO estimation,
    score-function (REINFORCE) gradients over rescored control-flow groups
    with a leave-one-out baseline and optional per-site
    Rao-Blackwellization.
``api``
    The :class:`InferenceEngine` registry unifying vectorized importance
    sampling, parallel MH chains, SMC, and SVI behind one request interface.
``session``
    :class:`ProgramSession` — parse, typecheck, and certify a model/guide
    pair once, then serve repeated inference requests from a cache.
``shard``
    Sharded multi-process execution: particle populations split into
    per-shard RNG streams, run on a persistent fork pool with shared-memory
    result transport, and merged exactly (results never depend on the
    worker count).
``server``
    The async batch-inference service: a coalescing request queue over
    sessions and shards with admission control (bounded queue, per-request
    deadlines, per-tenant quotas + round-robin fairness), throughput/latency
    counters, and a JSONL TCP front-end (CLI ``repro serve``).
``loadgen``
    Open-loop Poisson load generator for the server (CLI ``repro loadgen``):
    offered-rate traffic with mixed models/engines/tenants, latency
    percentiles, and shed-rate accounting.
"""

from repro.engine.api import (
    EngineResult,
    InferenceEngine,
    InferenceRequest,
    available_engines,
    get_engine,
    register_engine,
)
from repro.engine.backend import (
    BACKENDS,
    CompiledParticleRunner,
    clear_kernel_cache,
    fused_kernel_for,
    make_particle_runner,
)
from repro.engine.batched import BatchedDist
from repro.engine.loadgen import LoadConfig, LoadReport, run_load
from repro.engine.params import ParamStore, Transform, get_transform, store_from_inits
from repro.engine.server import InferenceService, ServerCounters, run_server, serve_tcp
from repro.engine.session import ProgramSession, clear_session_cache
from repro.engine.shard import (
    ShardedParticleRunner,
    plan_shards,
    pool_available,
    resolve_shards,
    shutdown_pool,
)
from repro.engine.smc import SMCResult, smc
from repro.engine.svi import (
    ScoreGradient,
    VectorizedSVIResult,
    elbo_and_score_gradient,
    estimate_elbo_batched,
    fit_svi,
)
from repro.engine.vectorize import (
    ParticleVectorizer,
    VectorRunResult,
    VectorizationUnsupported,
    vectorized_importance,
)

__all__ = [
    "BACKENDS",
    "BatchedDist",
    "CompiledParticleRunner",
    "EngineResult",
    "InferenceEngine",
    "InferenceRequest",
    "InferenceService",
    "LoadConfig",
    "LoadReport",
    "ParamStore",
    "ParticleVectorizer",
    "ProgramSession",
    "SMCResult",
    "ScoreGradient",
    "ServerCounters",
    "ShardedParticleRunner",
    "Transform",
    "VectorRunResult",
    "VectorizationUnsupported",
    "VectorizedSVIResult",
    "available_engines",
    "clear_kernel_cache",
    "clear_session_cache",
    "fused_kernel_for",
    "make_particle_runner",
    "elbo_and_score_gradient",
    "estimate_elbo_batched",
    "fit_svi",
    "get_transform",
    "get_engine",
    "plan_shards",
    "pool_available",
    "register_engine",
    "resolve_shards",
    "run_load",
    "run_server",
    "serve_tcp",
    "shutdown_pool",
    "smc",
    "store_from_inits",
    "vectorized_importance",
]
