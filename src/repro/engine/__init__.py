"""Vectorized particle engine: lockstep multi-particle inference runtimes.

The :mod:`repro.engine` subsystem executes N particles (or chains)
simultaneously over NumPy arrays instead of N sequential interpreter runs:

``batched``
    Distributions over a particle axis — one family, per-particle parameters
    — resolving a whole sample site with a single NumPy call.
``vectorize``
    The lockstep runtime: a vectorized expression evaluator, command
    interpreter, and channel scheduler that run a model/guide pair over a
    particle axis, splitting the particle set into control-flow groups when
    branches diverge (so recursive models still execute exactly).
``smc``
    A Sequential Monte Carlo engine (systematic resampling, ESS-triggered
    independence-MH rejuvenation) built on the vectorized runtime.
``api``
    The :class:`InferenceEngine` registry unifying vectorized importance
    sampling, parallel MH chains, and SMC behind one request interface.
``session``
    :class:`ProgramSession` — parse, typecheck, and certify a model/guide
    pair once, then serve repeated inference requests from a cache.
"""

from repro.engine.api import (
    EngineResult,
    InferenceEngine,
    InferenceRequest,
    available_engines,
    get_engine,
    register_engine,
)
from repro.engine.batched import BatchedDist
from repro.engine.session import ProgramSession, clear_session_cache
from repro.engine.smc import SMCResult, smc
from repro.engine.vectorize import (
    ParticleVectorizer,
    VectorRunResult,
    VectorizationUnsupported,
    vectorized_importance,
)

__all__ = [
    "BatchedDist",
    "EngineResult",
    "InferenceEngine",
    "InferenceRequest",
    "ParticleVectorizer",
    "ProgramSession",
    "SMCResult",
    "VectorRunResult",
    "VectorizationUnsupported",
    "available_engines",
    "clear_session_cache",
    "get_engine",
    "register_engine",
    "smc",
    "vectorized_importance",
]
