"""Lockstep vectorized execution of model/guide pairs over a particle axis.

The sequential scheduler (:mod:`repro.core.coroutines.runner`) runs one
particle at a time: every sample site costs a scalar RNG call, a scalar
density evaluation, and a full pass through the Python interpreter.  This
module runs N particles *simultaneously*: environments map variables to
``(n,)`` NumPy arrays, sample sites resolve with one batched draw/score
call (:class:`~repro.engine.batched.BatchedDist`), and the coroutine
scheduler advances one generator pair per *control-flow group* instead of
one pair per particle.

Control-flow divergence
-----------------------

Particles share a generator only while they take the same branches.  When a
branch predicate evaluates to a mixed Boolean array (some particles true,
some false), the group cannot continue in lockstep: the run aborts with an
internal split signal, the particle set is partitioned by the predicate, and
each subgroup re-executes from the start *replaying* every value that was
already resolved for it (sliced from the aborted group's recorded columns).
No value is ever redrawn, so the sampling distribution is exactly that of
the sequential interpreter — splitting only partitions execution.  Recursive
models (e.g. the Fig. 6 PCFG) therefore still run correctly; they simply
degrade towards per-particle groups as paths diverge.

Programs that use features outside the vectorized expression language
(closures applied to arrays, tuple-valued branches, ...) raise
:class:`VectorizationUnsupported`; :class:`ParticleVectorizer` then discards
the attempt wholesale and re-runs *every* particle through the sequential
scheduler.  Discarding all particles keeps the fallback unbiased — dropping
only the particles that hit the unsupported path would condition the kept
ones on not having hit it.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass, field
from typing import Callable, Deque, Dict, List, Optional, Sequence, Tuple

from repro.xp import np
from collections import deque

from repro.core import ast
from repro.core.coroutines.runner import (
    ChannelSpec,
    CoroutineSpec,
    DEFAULT_MAX_OPS,
    run_model_guide,
)
from repro.core.semantics import traces as tr
from repro.dists.base import Distribution
from repro.engine.batched import BatchedDist
from repro.errors import ChannelProtocolError, EvaluationError, InferenceError
from repro.utils.numerics import (
    effective_sample_size,
    log_mean_exp,
    normalize_log_weights,
    weighted_mean,
)
from repro.obs import REGISTRY, span
from repro.utils.recursion import deep_recursion
from repro.utils.rng import ensure_rng

#: One particle-population pass through a runner (interpretive or compiled,
#: including the sequential fallback); labelled by the backend that actually
#: executed it.  Shared with :mod:`repro.engine.backend`.
PARTICLE_RUN_SECONDS = REGISTRY.histogram(
    "repro_particle_run_seconds",
    "Wall time of one particle-population pass (sample all particles in "
    "lockstep), by executing backend.",
    labels=("backend",),
)


class VectorizationUnsupported(Exception):
    """The program uses a feature outside the vectorized evaluator.

    Internal control-flow signal: :class:`ParticleVectorizer` catches it and
    falls back to the sequential scheduler for the whole batch.
    """


# ---------------------------------------------------------------------------
# Vectorized expression evaluation
# ---------------------------------------------------------------------------


@dataclass
class VecClosure:
    """A closure whose captured environment may hold particle-axis arrays."""

    env: Dict[str, object]
    param: str
    body: ast.Expr


def _is_array(value: object) -> bool:
    return isinstance(value, np.ndarray)


def _as_bool_vec(value: object, what: str) -> object:
    if isinstance(value, bool):
        return value
    if _is_array(value) and value.dtype.kind == "b":
        return value
    raise EvaluationError(f"{what}: expected a Boolean, got {value!r}")


_ARITH = {
    ast.BinOp.ADD: lambda a, b: a + b,
    ast.BinOp.SUB: lambda a, b: a - b,
    ast.BinOp.MUL: lambda a, b: a * b,
}

_CMP = {
    ast.BinOp.LT: lambda a, b: a < b,
    ast.BinOp.LE: lambda a, b: a <= b,
    ast.BinOp.GT: lambda a, b: a > b,
    ast.BinOp.GE: lambda a, b: a >= b,
}


def eval_expr_vec(env: Dict[str, object], expr: ast.Expr, n: int) -> object:
    """Evaluate a pure expression where values may be ``(n,)`` arrays.

    Scalars mean "the same value for every particle".  Divergences from the
    scalar evaluator: both branches of an ``if`` with an array condition are
    evaluated strictly (merged with ``np.where``), and partial arithmetic
    errors in unselected lanes (division by zero, log of a non-positive
    number) yield ``inf``/``nan`` lanes instead of raising.
    """
    if isinstance(expr, ast.Var):
        if expr.name not in env:
            raise EvaluationError(f"unbound variable {expr.name!r}")
        return env[expr.name]

    if isinstance(expr, ast.Triv):
        return None
    if isinstance(expr, ast.BoolLit):
        return expr.value
    if isinstance(expr, ast.RealLit):
        return float(expr.value)
    if isinstance(expr, ast.NatLit):
        return int(expr.value)

    if isinstance(expr, ast.IfExpr):
        cond = _as_bool_vec(eval_expr_vec(env, expr.cond, n), "if-condition")
        if isinstance(cond, bool):
            return eval_expr_vec(env, expr.then if cond else expr.orelse, n)
        then_value = eval_expr_vec(env, expr.then, n)
        else_value = eval_expr_vec(env, expr.orelse, n)
        for value in (then_value, else_value):
            if not (_is_array(value) or isinstance(value, (int, float, bool))):
                raise VectorizationUnsupported(
                    f"if-expression over a particle axis with non-scalar arm {value!r}"
                )
        return np.where(cond, then_value, else_value)

    if isinstance(expr, ast.PrimOp):
        return _eval_primop_vec(env, expr, n)

    if isinstance(expr, ast.PrimUnOp):
        return _eval_primunop_vec(env, expr, n)

    if isinstance(expr, ast.Lam):
        return VecClosure(dict(env), expr.param, expr.body)

    if isinstance(expr, ast.App):
        func = eval_expr_vec(env, expr.func, n)
        arg = eval_expr_vec(env, expr.arg, n)
        if not isinstance(func, VecClosure):
            raise EvaluationError(f"applying a non-function value {func!r}")
        call_env = dict(func.env)
        call_env[func.param] = arg
        return eval_expr_vec(call_env, func.body, n)

    if isinstance(expr, ast.Let):
        bound = eval_expr_vec(env, expr.bound, n)
        inner = dict(env)
        inner[expr.var] = bound
        return eval_expr_vec(inner, expr.body, n)

    if isinstance(expr, ast.Tuple_):
        return tuple(eval_expr_vec(env, item, n) for item in expr.items)

    if isinstance(expr, ast.Proj):
        value = eval_expr_vec(env, expr.tuple_expr, n)
        if not isinstance(value, tuple) or not 0 <= expr.index < len(value):
            raise EvaluationError(f"invalid projection .{expr.index} from {value!r}")
        return value[expr.index]

    if isinstance(expr, ast.DistExpr):
        args = [eval_expr_vec(env, a, n) for a in expr.args]
        for a in args:
            if not (_is_array(a) or isinstance(a, (int, float))) or isinstance(a, bool):
                raise EvaluationError(
                    f"{expr.kind.value} parameter: expected a number, got {a!r}"
                )
        return BatchedDist(expr.kind, args, n)

    raise EvaluationError(f"unknown expression node {expr!r}")


def _eval_primop_vec(env: Dict[str, object], expr: ast.PrimOp, n: int) -> object:
    op = expr.op
    if op in (ast.BinOp.AND, ast.BinOp.OR):
        left = _as_bool_vec(eval_expr_vec(env, expr.left, n), f"left operand of {op.value}")
        if isinstance(left, bool):
            # Preserve scalar short-circuiting.
            if op is ast.BinOp.AND and not left:
                return False
            if op is ast.BinOp.OR and left:
                return True
            return _as_bool_vec(
                eval_expr_vec(env, expr.right, n), f"right operand of {op.value}"
            )
        right = _as_bool_vec(eval_expr_vec(env, expr.right, n), f"right operand of {op.value}")
        combine = np.logical_and if op is ast.BinOp.AND else np.logical_or
        return combine(left, right)

    left = eval_expr_vec(env, expr.left, n)
    right = eval_expr_vec(env, expr.right, n)

    if op in (ast.BinOp.EQ, ast.BinOp.NE):
        if _is_array(left) or _is_array(right):
            return np.equal(left, right) if op is ast.BinOp.EQ else np.not_equal(left, right)
        equal = left == right
        return equal if op is ast.BinOp.EQ else not equal

    if op in _CMP:
        return _CMP[op](left, right)

    if op in _ARITH:
        return _ARITH[op](left, right)

    if op is ast.BinOp.DIV:
        if not _is_array(left) and not _is_array(right):
            if right == 0.0:
                raise EvaluationError("division by zero")
            return left / right
        with np.errstate(divide="ignore", invalid="ignore"):
            return np.asarray(left, dtype=float) / np.asarray(right, dtype=float)

    raise EvaluationError(f"unknown binary operator {op!r}")


def _eval_primunop_vec(env: Dict[str, object], expr: ast.PrimUnOp, n: int) -> object:
    op = expr.op
    operand = eval_expr_vec(env, expr.operand, n)
    if op is ast.UnOp.NOT:
        value = _as_bool_vec(operand, "operand of !")
        return (not value) if isinstance(value, bool) else np.logical_not(value)
    if op is ast.UnOp.NEG:
        return -operand
    if not _is_array(operand):
        number = float(operand)
        if op is ast.UnOp.EXP:
            return math.exp(number)
        if op is ast.UnOp.LOG:
            if number <= 0.0:
                raise EvaluationError(f"log of a non-positive number {number}")
            return math.log(number)
        if op is ast.UnOp.SQRT:
            if number < 0.0:
                raise EvaluationError(f"sqrt of a negative number {number}")
            return math.sqrt(number)
    else:
        with np.errstate(divide="ignore", invalid="ignore", over="ignore"):
            if op is ast.UnOp.EXP:
                return np.exp(operand)
            if op is ast.UnOp.LOG:
                return np.log(operand)
            if op is ast.UnOp.SQRT:
                return np.sqrt(operand)
    raise EvaluationError(f"unknown unary operator {op!r}")


# ---------------------------------------------------------------------------
# Vectorized channel operations and command interpretation
# ---------------------------------------------------------------------------


@dataclass
class VOp:
    channel: str


@dataclass
class VOpSendSample(VOp):
    dist: BatchedDist


@dataclass
class VOpRecvSample(VOp):
    dist: BatchedDist


@dataclass
class VOpSendBranch(VOp):
    pred: object  # bool, or (n,) Boolean array


@dataclass
class VOpRecvBranch(VOp):
    pass


@dataclass
class VOpFold(VOp):
    pass


@dataclass
class VOpObserve(VOp):
    dist: BatchedDist
    values: object


@dataclass
class VOpPureBranch(VOp):
    """A non-communicating conditional whose predicate spans the particle axis."""

    pred: object


def _eval_dist_vec(env: Dict[str, object], expr: ast.Expr, n: int) -> BatchedDist:
    value = eval_expr_vec(env, expr, n)
    if isinstance(value, BatchedDist):
        return value
    if isinstance(value, Distribution):
        return BatchedDist.from_scalar(value, n)
    raise EvaluationError(f"sample command expects a distribution, got {value!r}")


def interpret_command_vec(program: ast.Program, cmd: ast.Command, env: Dict[str, object], n: int):
    """Interpret ``cmd`` as a coroutine over a particle axis of size ``n``."""
    if isinstance(cmd, ast.Ret):
        return eval_expr_vec(env, cmd.expr, n)

    if isinstance(cmd, ast.Bnd):
        first = yield from interpret_command_vec(program, cmd.first, env, n)
        inner = dict(env)
        inner[cmd.var] = first
        result = yield from interpret_command_vec(program, cmd.second, inner, n)
        return result

    if isinstance(cmd, ast.SampleRecv):
        dist = _eval_dist_vec(env, cmd.dist, n)
        value = yield VOpRecvSample(cmd.channel, dist)
        return value

    if isinstance(cmd, ast.SampleSend):
        dist = _eval_dist_vec(env, cmd.dist, n)
        value = yield VOpSendSample(cmd.channel, dist)
        return value

    if isinstance(cmd, ast.CondSend):
        predicate = _as_bool_vec(eval_expr_vec(env, cmd.cond, n), "branch predicate")
        selection = yield VOpSendBranch(cmd.channel, predicate)
        branch = cmd.then if selection else cmd.orelse
        result = yield from interpret_command_vec(program, branch, env, n)
        return result

    if isinstance(cmd, ast.CondRecv):
        selection = yield VOpRecvBranch(cmd.channel)
        branch = cmd.then if selection else cmd.orelse
        result = yield from interpret_command_vec(program, branch, env, n)
        return result

    if isinstance(cmd, ast.CondPure):
        predicate = _as_bool_vec(eval_expr_vec(env, cmd.cond, n), "branch predicate")
        if not isinstance(predicate, bool):
            predicate = yield VOpPureBranch("", predicate)
        branch = cmd.then if predicate else cmd.orelse
        result = yield from interpret_command_vec(program, branch, env, n)
        return result

    if isinstance(cmd, ast.Call):
        try:
            callee = program.procedure(cmd.proc)
        except KeyError as exc:
            raise EvaluationError(f"call to unknown procedure {cmd.proc!r}") from exc
        argument = eval_expr_vec(env, cmd.arg, n)
        call_env = _bind_arguments_vec(callee, argument)
        for channel in (callee.consumes, callee.provides):
            if channel is not None:
                yield VOpFold(channel)
        result = yield from interpret_command_vec(program, callee.body, call_env, n)
        return result

    if isinstance(cmd, ast.Observe):
        dist = _eval_dist_vec(env, cmd.dist, n)
        value = eval_expr_vec(env, cmd.value, n)
        yield VOpObserve("", dist, value)
        return None

    raise EvaluationError(f"unknown command node {cmd!r}")


def interpret_procedure_vec(program: ast.Program, entry: str, args: Sequence[object], n: int):
    procedure = program.procedure(entry)
    if len(args) != len(procedure.params):
        raise EvaluationError(
            f"{entry} expects {len(procedure.params)} arguments, got {len(args)}"
        )
    env = dict(zip(procedure.params, args))
    return interpret_command_vec(program, procedure.body, env, n)


def _bind_arguments_vec(procedure: ast.Procedure, argument: object) -> Dict[str, object]:
    params = procedure.params
    if len(params) == 0:
        return {}
    if len(params) == 1:
        return {params[0]: argument}
    if not isinstance(argument, tuple) or len(argument) != len(params):
        raise EvaluationError(
            f"{procedure.name} expects {len(params)} arguments, got {argument!r}"
        )
    return dict(zip(params, argument))


# ---------------------------------------------------------------------------
# The vectorized scheduler
# ---------------------------------------------------------------------------


@dataclass
class VecMessage:
    """One resolved protocol message for a particle group.

    ``payload`` is a ``(group,)`` array for sample values that differ per
    particle, or a plain scalar when every particle shares the value (branch
    selections are always uniform within a group by construction).
    """

    kind: str  # 'val' | 'dir' | 'fold'
    provider: bool  # sent by the channel's provider?
    payload: object = None

    def sliced(self, mask: np.ndarray) -> "VecMessage":
        payload = self.payload[mask] if isinstance(self.payload, np.ndarray) else self.payload
        return VecMessage(self.kind, self.provider, payload)


class _SplitRequired(Exception):
    """A branch predicate diverged: the group must be partitioned."""

    def __init__(self, mask: np.ndarray, channel: Optional[str], provider: Optional[bool]):
        super().__init__("particle group diverged at a branch")
        self.mask = np.asarray(mask, dtype=bool)
        self.channel = channel
        self.provider = provider


@dataclass
class _VecTask:
    name: str
    generator: object
    log_weight: np.ndarray
    obs_scores: List[object] = field(default_factory=list)
    #: Per-sample-site log-density terms in this task's op order, as
    #: ``(channel, (n,) scores)`` pairs.  The SVI engine uses the guide's
    #: entries as per-site score-function components and the model's entries
    #: to build Rao-Blackwellized learning signals.
    site_scores: List[Tuple[str, np.ndarray]] = field(default_factory=list)
    finished: bool = False
    value: object = None
    started: bool = False
    pending_op: Optional[VOp] = None
    pending_send: object = None


@dataclass
class _VecChannelState:
    spec: ChannelSpec
    log: List[VecMessage]
    to_consumer: Deque[Tuple[str, object]] = field(default_factory=deque)
    to_provider: Deque[Tuple[str, object]] = field(default_factory=deque)
    recorded: List[VecMessage] = field(default_factory=list)
    replay_cursor: Optional[tr.TraceCursor] = None
    log_pos: int = 0
    fold_waiting: Optional[str] = None
    fold_passes: set = field(default_factory=set)

    def __post_init__(self) -> None:
        if self.spec.replay is not None:
            self.replay_cursor = tr.TraceCursor(self.spec.replay)

    def outgoing(self, sender_is_provider: bool) -> Deque[Tuple[str, object]]:
        return self.to_consumer if sender_is_provider else self.to_provider

    def incoming(self, receiver_is_provider: bool) -> Deque[Tuple[str, object]]:
        return self.to_provider if receiver_is_provider else self.to_consumer


@dataclass
class _GroupResult:
    log_weights: Dict[str, np.ndarray]
    values: Dict[str, object]
    recorded: Dict[str, List[VecMessage]]
    obs_scores: Dict[str, List[object]]
    site_scores: Dict[str, List[Tuple[str, np.ndarray]]]


class _VecScheduler:
    """Round-robin scheduler over one particle group's coroutine pair.

    Mirrors :class:`repro.core.coroutines.runner._Scheduler` operation by
    operation; the differences are that values and weights are ``(n,)``
    arrays, and that resolved messages are recorded as columns so that a
    split can replay them for each subgroup.
    """

    def __init__(
        self,
        coroutines: Sequence[CoroutineSpec],
        channels: Sequence[ChannelSpec],
        rng: np.random.Generator,
        n: int,
        logs: Optional[Dict[str, List[VecMessage]]] = None,
        max_ops: int = DEFAULT_MAX_OPS,
        strict_replay: bool = False,
    ):
        self.rng = rng
        self.n = n
        self.max_ops = max_ops
        self.strict_replay = strict_replay
        self.ops_handled = 0
        self.tasks: Dict[str, _VecTask] = {}
        for spec in coroutines:
            generator = interpret_procedure_vec(spec.program, spec.entry, spec.args, n)
            self.tasks[spec.name] = _VecTask(
                name=spec.name, generator=generator, log_weight=np.zeros(n)
            )
        logs = logs or {}
        self.channels: Dict[str, _VecChannelState] = {
            spec.name: _VecChannelState(spec, log=logs.get(spec.name, []))
            for spec in channels
        }

    # -- helpers ---------------------------------------------------------------

    def _channel(self, name: str) -> _VecChannelState:
        if name not in self.channels:
            raise ChannelProtocolError(
                f"coroutine communicates on undeclared channel {name!r}"
            )
        return self.channels[name]

    def _is_provider(self, task: _VecTask, channel: _VecChannelState) -> bool:
        return channel.spec.provider == task.name

    def _partner_is_live(self, task: _VecTask, channel: _VecChannelState) -> bool:
        partner = (
            channel.spec.consumer
            if self._is_provider(task, channel)
            else channel.spec.provider
        )
        return partner is not None and partner in self.tasks

    def _resolve(
        self,
        channel: _VecChannelState,
        kind: str,
        provider_sent: bool,
        fresh: Callable[[], object],
    ) -> object:
        """Resolve and record the next protocol message on ``channel``.

        Channels bound to an external replay trace always resolve from that
        trace (it is deterministic); all other channels consume the group
        replay log when one is present, so a subgroup re-execution reuses
        exactly the values its particles already drew.
        """
        if channel.replay_cursor is None and channel.log_pos < len(channel.log):
            entry = channel.log[channel.log_pos]
            channel.log_pos += 1
            if entry.kind != kind:
                raise ChannelProtocolError(
                    f"group replay on {channel.spec.name!r}: expected a {kind} "
                    f"message, found a {entry.kind} message"
                )
            payload = entry.payload
        else:
            if self.strict_replay and channel.replay_cursor is None:
                # Rescoring mode: a resolution past the end of the recorded
                # log means the coroutines took a different path than the
                # recorded run (e.g. a parameter-dependent pure branch
                # flipped) — drawing fresh values would silently score a
                # different trace.
                raise ChannelProtocolError(
                    f"rescore on {channel.spec.name!r} ran past the recorded "
                    "message log; the replayed execution diverged from the "
                    "recorded control path"
                )
            payload = fresh()
        channel.recorded.append(VecMessage(kind, provider_sent, payload))
        return payload

    def _replay_value(self, channel: _VecChannelState, what: str) -> object:
        assert channel.replay_cursor is not None
        message = channel.replay_cursor.take(tr.Message, what)
        if not isinstance(message, (tr.ValP, tr.ValC)):
            raise ChannelProtocolError(
                f"{what}: replay trace provides {message}, expected a sample value"
            )
        return message.value

    def _replay_branch(self, channel: _VecChannelState, what: str) -> bool:
        assert channel.replay_cursor is not None
        message = channel.replay_cursor.take(tr.Message, what)
        if not isinstance(message, (tr.DirP, tr.DirC)):
            raise ChannelProtocolError(
                f"{what}: replay trace provides {message}, expected a branch selection"
            )
        return bool(message.value)

    def _uniform_selection(self, pred: object, channel: str, provider: bool) -> bool:
        if isinstance(pred, bool):
            return pred
        pred = np.asarray(pred, dtype=bool)
        if pred.all():
            return True
        if not pred.any():
            return False
        raise _SplitRequired(pred, channel, provider)

    # -- op handlers -----------------------------------------------------------

    def _handle(self, task: _VecTask, op: VOp) -> Tuple[bool, object]:
        self.ops_handled += 1
        if self.ops_handled > self.max_ops:
            raise ChannelProtocolError(
                f"joint execution exceeded the operation budget ({self.max_ops}); "
                "the model/guide recursion appears not to terminate"
            )

        if isinstance(op, VOpObserve):
            scores = op.dist.log_prob(_broadcast_values(op.values, self.n))
            task.log_weight = task.log_weight + scores
            task.obs_scores.append(scores)
            return True, None

        if isinstance(op, VOpPureBranch):
            return True, self._uniform_selection(op.pred, None, None)

        channel = self._channel(op.channel)
        provider = self._is_provider(task, channel)

        if isinstance(op, VOpSendSample):
            def fresh():
                if channel.replay_cursor is not None:
                    return self._replay_value(channel, f"send on {op.channel}")
                return op.dist.sample(self.rng)

            value = self._resolve(channel, "val", provider, fresh)
            scores = op.dist.log_prob(_broadcast_values(value, self.n))
            task.log_weight = task.log_weight + scores
            task.site_scores.append((op.channel, scores))
            if not self._partner_is_live(task, channel):
                task.obs_scores.append(scores)
            else:
                channel.outgoing(provider).append(("val", value))
            return True, value

        if isinstance(op, VOpRecvSample):
            if self._partner_is_live(task, channel):
                incoming = channel.incoming(provider)
                if not incoming:
                    return False, None
                kind, value = incoming.popleft()
                if kind != "val":
                    raise ChannelProtocolError(
                        f"receive on {op.channel}: expected a sample value, got a {kind} message"
                    )
            else:
                def fresh():
                    if channel.replay_cursor is not None:
                        return self._replay_value(channel, f"receive on {op.channel}")
                    # Generate mode: prior simulation from the receiver's dist.
                    return op.dist.sample(self.rng)

                value = self._resolve(channel, "val", not provider, fresh)
            scores = op.dist.log_prob(_broadcast_values(value, self.n))
            task.log_weight = task.log_weight + scores
            task.site_scores.append((op.channel, scores))
            return True, value

        if isinstance(op, VOpSendBranch):
            def fresh():
                if channel.replay_cursor is not None:
                    return self._replay_branch(channel, f"branch on {op.channel}")
                return self._uniform_selection(op.pred, op.channel, provider)

            selection = self._resolve(channel, "dir", provider, fresh)
            mismatch = np.not_equal(op.pred, selection)
            if np.any(mismatch):
                task.log_weight = np.where(mismatch, -np.inf, task.log_weight)
            if self._partner_is_live(task, channel):
                channel.outgoing(provider).append(("dir", selection))
            return True, selection

        if isinstance(op, VOpRecvBranch):
            if self._partner_is_live(task, channel):
                incoming = channel.incoming(provider)
                if not incoming:
                    return False, None
                kind, selection = incoming.popleft()
                if kind != "dir":
                    raise ChannelProtocolError(
                        f"receive on {op.channel}: expected a branch selection, got a {kind} message"
                    )
            else:
                def fresh():
                    if channel.replay_cursor is None:
                        raise ChannelProtocolError(
                            f"receive of a branch selection on {op.channel!r} with no "
                            "partner and no replay trace"
                        )
                    return self._replay_branch(channel, f"branch on {op.channel}")

                selection = self._resolve(channel, "dir", not provider, fresh)
            return True, selection

        if isinstance(op, VOpFold):
            if not self._partner_is_live(task, channel):
                if channel.replay_cursor is not None:
                    channel.replay_cursor.take(tr.Fold, f"call marker on {op.channel}")
                    if provider:
                        channel.recorded.append(VecMessage("fold", True))
                elif provider:
                    self._resolve(channel, "fold", True, lambda: None)
                return True, None
            if task.name in channel.fold_passes:
                channel.fold_passes.discard(task.name)
                return True, None
            if channel.fold_waiting is None:
                channel.fold_waiting = task.name
                return False, None
            if channel.fold_waiting == task.name:
                return False, None
            other = channel.fold_waiting
            channel.fold_waiting = None
            channel.fold_passes.add(other)
            self._resolve(channel, "fold", True, lambda: None)
            return True, None

        raise ChannelProtocolError(f"unknown channel operation {op!r}")

    # -- the scheduling loop ---------------------------------------------------

    def _step(self, task: _VecTask) -> bool:
        progressed = False
        while not task.finished:
            try:
                if not task.started:
                    task.started = True
                    op = next(task.generator)
                elif task.pending_op is not None:
                    op = task.pending_op
                    task.pending_op = None
                else:
                    op = task.generator.send(task.pending_send)
                    task.pending_send = None
            except StopIteration as stop:
                task.finished = True
                task.value = stop.value
                return True

            ready, value = self._handle(task, op)
            if not ready:
                task.pending_op = op
                return progressed
            task.pending_send = value
            progressed = True
        return progressed

    def run(self) -> _GroupResult:
        with deep_recursion():
            return self._run_loop()

    def _run_loop(self) -> _GroupResult:
        pending = deque(self.tasks.values())
        while any(not task.finished for task in self.tasks.values()):
            progressed_any = False
            for _ in range(len(pending)):
                task = pending.popleft()
                pending.append(task)
                if task.finished:
                    continue
                if self._step(task):
                    progressed_any = True
            if not progressed_any:
                blocked = [t.name for t in self.tasks.values() if not t.finished]
                raise ChannelProtocolError(
                    "deadlock: coroutines "
                    + ", ".join(blocked)
                    + " are all blocked waiting for messages; the model and guide "
                    "do not follow the same guidance protocol"
                )
        return _GroupResult(
            log_weights={name: task.log_weight for name, task in self.tasks.items()},
            values={name: task.value for name, task in self.tasks.items()},
            recorded={name: state.recorded for name, state in self.channels.items()},
            obs_scores={name: task.obs_scores for name, task in self.tasks.items()},
            site_scores={name: task.site_scores for name, task in self.tasks.items()},
        )


def _broadcast_values(value: object, n: int) -> object:
    """Lift a shared scalar to the particle axis for batched scoring."""
    if isinstance(value, np.ndarray):
        return value
    if isinstance(value, bool):
        return np.full(n, value, dtype=bool)
    if isinstance(value, (int, float, np.integer, np.floating, np.bool_)):
        return np.full(n, value)
    return [value] * n  # exotic payloads take the scalar-loop path


def _to_python(value: object) -> object:
    if isinstance(value, np.bool_):
        return bool(value)
    if isinstance(value, np.integer):
        return int(value)
    if isinstance(value, np.floating):
        return float(value)
    return value


# ---------------------------------------------------------------------------
# The particle vectorizer and its result
# ---------------------------------------------------------------------------


@dataclass
class _Leaf:
    """One finished control-flow group: indices plus columnar results."""

    indices: np.ndarray
    model_log_weights: np.ndarray
    guide_log_weights: np.ndarray
    recorded: Dict[str, List[VecMessage]]
    obs_scores: Optional[List[object]]  # model-side likelihood terms, in order
    model_value: object = None
    guide_value: object = None
    #: Per-site ``(channel, scores)`` ledgers in each task's op order; ``None``
    #: when the group came from the sequential fallback (which does not
    #: decompose weights per site).
    model_site_scores: Optional[List[Tuple[str, np.ndarray]]] = None
    guide_site_scores: Optional[List[Tuple[str, np.ndarray]]] = None


class ParticleVectorizer:
    """Runs a model/guide pair for N particles in lockstep.

    The public entry point is :meth:`run`; the channel topology mirrors
    :func:`repro.core.coroutines.run_model_guide` (guide provides the latent
    channel, model provides the observation channel, observations replayed
    from ``obs_trace`` when given).
    """

    def __init__(
        self,
        model_program: ast.Program,
        guide_program: ast.Program,
        model_entry: str,
        guide_entry: str,
        obs_trace: Optional[Sequence[tr.Message]] = None,
        model_args: Tuple[object, ...] = (),
        guide_args: Tuple[object, ...] = (),
        latent_channel: str = "latent",
        obs_channel: str = "obs",
        max_ops: int = DEFAULT_MAX_OPS,
        max_splits: int = 10_000,
    ):
        self.model_program = model_program
        self.guide_program = guide_program
        self.model_entry = model_entry
        self.guide_entry = guide_entry
        self.obs_trace = tuple(obs_trace) if obs_trace is not None else None
        self.model_args = model_args
        self.guide_args = guide_args
        self.latent_channel = latent_channel
        self.obs_channel = obs_channel
        self.max_ops = max_ops
        self.max_splits = max_splits

        model_proc = model_program.procedure(model_entry)
        self._channel_specs = [
            ChannelSpec(name=latent_channel, provider="guide", consumer="model")
        ]
        if model_proc.provides == obs_channel:
            self._channel_specs.append(
                ChannelSpec(
                    name=obs_channel, provider="model", consumer=None, replay=self.obs_trace
                )
            )
        self._coroutine_specs = [
            CoroutineSpec(name="model", program=model_program, entry=model_entry, args=model_args),
            CoroutineSpec(name="guide", program=guide_program, entry=guide_entry, args=guide_args),
        ]
        self._replay_channels = {
            spec.name for spec in self._channel_specs if spec.replay is not None
        }

    def run(self, num_particles: int, rng=None) -> "VectorRunResult":
        if num_particles <= 0:
            raise InferenceError("num_particles must be positive")
        rng = ensure_rng(rng)
        started = time.perf_counter()
        with span("particles.run", backend="interp", particles=num_particles):
            try:
                leaves = self._run_vectorized(num_particles, rng)
                vectorized = True
            except VectorizationUnsupported:
                # Unsupported feature somewhere in the batch: discard every
                # draw and redo the whole batch sequentially, which keeps the
                # result unbiased (see module docstring).
                leaves = self._run_sequential(num_particles, rng)
                vectorized = False
        PARTICLE_RUN_SECONDS.labels(backend="interp").observe(
            time.perf_counter() - started
        )
        return VectorRunResult(
            num_particles,
            leaves,
            latent_channel=self.latent_channel,
            obs_channel=self.obs_channel,
            vectorized=vectorized,
            # Set by make_particle_runner when this interp runner is serving
            # a compiled request whose pair is outside the fused fragment.
            fallback_reason=getattr(self, "fallback_reason", None),
        )

    def rescore_group(self, leaf: _Leaf, rng=None) -> _GroupResult:
        """Re-execute one finished control-flow group with every resolution replayed.

        Every sample value and branch selection comes from the group's
        recorded log (external-replay channels re-resolve from their own
        trace), so no randomness is consumed: the run only *rescores* the
        recorded trace under this vectorizer's programs and arguments.  This
        is the primitive behind score-function gradients: build a vectorizer
        with perturbed guide arguments and rescore the groups drawn at the
        unperturbed point to measure how the guide density responds.

        Raises :class:`ChannelProtocolError` when the replayed execution
        diverges from the recorded control path (consumes more or fewer
        messages than the log holds, or messages of the wrong kind) — e.g. a
        pure branch on a perturbed argument flipping arms.
        """
        logs = {
            name: list(messages)
            for name, messages in leaf.recorded.items()
            if name not in self._replay_channels
        }
        scheduler = _VecScheduler(
            self._coroutine_specs,
            self._channel_specs,
            ensure_rng(rng),
            n=len(leaf.indices),
            logs=logs,
            max_ops=self.max_ops,
            strict_replay=True,
        )
        result = scheduler.run()
        for name, state in scheduler.channels.items():
            if state.replay_cursor is None and state.log_pos < len(state.log):
                raise ChannelProtocolError(
                    f"rescore on {name!r} consumed only {state.log_pos} of "
                    f"{len(state.log)} recorded messages; the replayed "
                    "execution diverged from the recorded control path"
                )
        return result

    # -- lockstep execution with group splitting -------------------------------

    def _run_vectorized(self, num_particles: int, rng) -> List[_Leaf]:
        stack: List[Tuple[np.ndarray, Dict[str, List[VecMessage]]]] = [
            (np.arange(num_particles), {})
        ]
        leaves: List[_Leaf] = []
        splits = 0
        while stack:
            indices, logs = stack.pop()
            scheduler = _VecScheduler(
                self._coroutine_specs,
                self._channel_specs,
                rng,
                n=len(indices),
                logs=logs,
                max_ops=self.max_ops,
            )
            try:
                result = scheduler.run()
            except _SplitRequired as split:
                splits += 1
                if splits > self.max_splits:
                    raise InferenceError(
                        f"vectorized execution exceeded {self.max_splits} control-flow "
                        "splits; use the sequential engine for this model"
                    ) from split
                stack.extend(self._partition(scheduler, indices, split))
                continue
            leaves.append(
                _Leaf(
                    indices=indices,
                    model_log_weights=result.log_weights["model"],
                    guide_log_weights=result.log_weights["guide"],
                    recorded=result.recorded,
                    obs_scores=result.obs_scores["model"],
                    model_value=result.values["model"],
                    guide_value=result.values["guide"],
                    model_site_scores=result.site_scores["model"],
                    guide_site_scores=result.site_scores["guide"],
                )
            )
        return leaves

    def _partition(self, scheduler: _VecScheduler, indices, split: _SplitRequired):
        subgroups = []
        for selection in (True, False):
            mask = split.mask if selection else ~split.mask
            logs: Dict[str, List[VecMessage]] = {}
            for name, state in scheduler.channels.items():
                # External-replay channels re-resolve from their own trace.
                if state.replay_cursor is not None:
                    continue
                logs[name] = [message.sliced(mask) for message in state.recorded]
            if split.channel is not None:
                logs.setdefault(split.channel, []).append(
                    VecMessage("dir", split.provider, selection)
                )
            subgroups.append((indices[mask], logs))
        return subgroups

    # -- whole-batch sequential fallback ---------------------------------------

    def _run_sequential(self, num_particles: int, rng) -> List[_Leaf]:
        leaves = []
        for i in range(num_particles):
            joint = run_model_guide(
                self.model_program,
                self.guide_program,
                self.model_entry,
                self.guide_entry,
                obs_trace=self.obs_trace,
                rng=rng,
                model_args=self.model_args,
                guide_args=self.guide_args,
                latent_channel=self.latent_channel,
                obs_channel=self.obs_channel,
            )
            recorded = {
                name: [_vec_message_of(m) for m in trace]
                for name, trace in joint.traces.items()
            }
            leaves.append(
                _Leaf(
                    indices=np.asarray([i]),
                    model_log_weights=np.asarray([joint.log_weights["model"]]),
                    guide_log_weights=np.asarray([joint.log_weights["guide"]]),
                    recorded=recorded,
                    obs_scores=None,
                    model_value=joint.values["model"],
                    guide_value=joint.values["guide"],
                )
            )
        return leaves


def _vec_message_of(message: tr.Message) -> VecMessage:
    if isinstance(message, tr.ValP):
        return VecMessage("val", True, message.value)
    if isinstance(message, tr.ValC):
        return VecMessage("val", False, message.value)
    if isinstance(message, tr.DirP):
        return VecMessage("dir", True, message.value)
    if isinstance(message, tr.DirC):
        return VecMessage("dir", False, message.value)
    return VecMessage("fold", True)


class VectorRunResult:
    """Columnar result of a vectorized multi-particle run.

    Per-particle quantities are exposed as ``(n,)`` arrays assembled from the
    control-flow groups; per-particle traces are materialised lazily (one
    tuple of messages per particle) only when explicitly requested, so the
    hot inference path never touches per-particle Python objects.
    """

    def __init__(
        self,
        num_particles: int,
        leaves: List[_Leaf],
        latent_channel: str = "latent",
        obs_channel: str = "obs",
        vectorized: bool = True,
        backend: str = "interp",
        jit: str = "none",
        fallback_reason: Optional[str] = None,
    ):
        self.num_particles = num_particles
        self.leaves = leaves
        self.latent_channel = latent_channel
        self.obs_channel = obs_channel
        self.vectorized = vectorized
        #: Which execution strategy produced the leaves: ``"interp"`` (the
        #: lockstep interpreter, possibly via its sequential fallback) or
        #: ``"compiled"`` (a fused batched kernel).
        self.backend = backend
        #: Which JIT tier the compiled backend was *requested* at: ``"none"``
        #: (per-region fused kernel) or ``"mega"`` (cross-group megakernel).
        #: Carries the requested tier even when ``backend`` reports a
        #: fallback to ``"interp"`` so diagnostics can pair the two.
        self.jit = jit
        #: Why a compiled-backend run was served by the interpreter instead
        #: (``None`` when no fallback happened).
        self.fallback_reason = fallback_reason

        self.model_log_weights = np.empty(num_particles)
        self.guide_log_weights = np.empty(num_particles)
        for leaf in leaves:
            self.model_log_weights[leaf.indices] = leaf.model_log_weights
            self.guide_log_weights[leaf.indices] = leaf.guide_log_weights

    @property
    def num_groups(self) -> int:
        return len(self.leaves)

    def log_weights(self) -> np.ndarray:
        """Importance weights ``log(w_m / w_g)`` with zero-weight guarding."""
        with np.errstate(invalid="ignore"):
            weights = self.model_log_weights - self.guide_log_weights
        return np.where(np.isneginf(self.guide_log_weights), -np.inf, weights)

    def obs_score_matrix(self) -> Optional[np.ndarray]:
        """Per-particle, per-observation log-likelihood terms (``(n, T)``).

        ``None`` when the run fell back to the sequential scheduler (which
        does not decompose the model weight).  Groups whose control path
        emits fewer observation messages than the longest path are padded
        with zero contributions.
        """
        if any(leaf.obs_scores is None for leaf in self.leaves):
            return None
        num_steps = max((len(leaf.obs_scores) for leaf in self.leaves), default=0)
        matrix = np.zeros((self.num_particles, num_steps))
        for leaf in self.leaves:
            for t, scores in enumerate(leaf.obs_scores):
                matrix[leaf.indices, t] = scores
        return matrix

    def _latent_columns(self, leaf: _Leaf) -> List[object]:
        return [
            m.payload
            for m in leaf.recorded.get(self.latent_channel, [])
            if m.kind == "val"
        ]

    def site_values(self, index: int) -> np.ndarray:
        """Values of the ``index``-th latent sample site, ``nan`` where absent."""
        out = np.full(self.num_particles, np.nan)
        for leaf in self.leaves:
            columns = self._latent_columns(leaf)
            if len(columns) > index:
                column = columns[index]
                if isinstance(column, np.ndarray):
                    out[leaf.indices] = column.astype(float)
                else:
                    out[leaf.indices] = float(column)
        return out

    def _locate(self, particle: int) -> Tuple[_Leaf, int]:
        if not 0 <= particle < self.num_particles:
            raise IndexError(f"no particle {particle} in this run")
        if not hasattr(self, "_leaf_of"):
            self._leaf_of = np.empty(self.num_particles, dtype=int)
            self._pos_of = np.empty(self.num_particles, dtype=int)
            for leaf_id, leaf in enumerate(self.leaves):
                self._leaf_of[leaf.indices] = leaf_id
                self._pos_of[leaf.indices] = np.arange(len(leaf.indices))
        return self.leaves[int(self._leaf_of[particle])], int(self._pos_of[particle])

    def trace_for(self, particle: int, channel: Optional[str] = None) -> tr.Trace:
        """Materialise one particle's guidance trace on ``channel``."""
        channel = channel or self.latent_channel
        leaf, j = self._locate(particle)
        messages: List[tr.Message] = []
        for m in leaf.recorded.get(channel, []):
            payload = m.payload[j] if isinstance(m.payload, np.ndarray) else m.payload
            payload = _to_python(payload)
            if m.kind == "val":
                messages.append(tr.ValP(payload) if m.provider else tr.ValC(payload))
            elif m.kind == "dir":
                messages.append(tr.DirP(payload) if m.provider else tr.DirC(payload))
            else:
                messages.append(tr.Fold())
        return tuple(messages)


# ---------------------------------------------------------------------------
# Vectorized importance sampling
# ---------------------------------------------------------------------------


class VectorizedISResult:
    """Importance-sampling summary over a vectorized run (columnar)."""

    def __init__(self, run: VectorRunResult):
        self.run = run
        self._log_weights = run.log_weights()

    @property
    def num_samples(self) -> int:
        return self.run.num_particles

    @property
    def log_weights(self) -> np.ndarray:
        return self._log_weights

    def log_evidence(self) -> float:
        return log_mean_exp(self._log_weights)

    def normalized_weights(self) -> np.ndarray:
        return normalize_log_weights(self._log_weights)

    def effective_sample_size(self) -> float:
        return effective_sample_size(self._log_weights)

    def posterior_expectation_of_site(self, index: int) -> float:
        """Posterior mean of the ``index``-th latent site in protocol order.

        Mirrors :meth:`ImportanceResult.posterior_expectation_of_site`:
        particles whose trace does not reach the site are excluded and the
        weights renormalised over the rest.
        """
        values = self.run.site_values(index)
        keep = ~np.isnan(values)
        if not np.any(keep):
            raise InferenceError(f"no particle has a latent value at index {index}")
        return weighted_mean(values[keep], self._log_weights[keep])

    def to_importance_result(self):
        """Materialise per-particle samples for scalar-path compatibility."""
        from repro.inference.importance import ImportanceResult, ImportanceSample

        samples = []
        for i in range(self.num_samples):
            samples.append(
                ImportanceSample(
                    latent_trace=self.run.trace_for(i),
                    log_weight=float(self._log_weights[i]),
                    model_log_weight=float(self.run.model_log_weights[i]),
                    guide_log_weight=float(self.run.guide_log_weights[i]),
                    model_value=None,
                    guide_value=None,
                )
            )
        return ImportanceResult(samples)


def vectorized_importance(
    model_program: ast.Program,
    guide_program: ast.Program,
    model_entry: str,
    guide_entry: str,
    obs_trace: Optional[Sequence[tr.Message]],
    num_particles: int,
    rng=None,
    model_args: Tuple[object, ...] = (),
    guide_args: Tuple[object, ...] = (),
    latent_channel: str = "latent",
    obs_channel: str = "obs",
    raise_on_all_zero: bool = True,
    backend: str = "interp",
    jit: str = "none",
    session=None,
    workers: int = 1,
    shards: Optional[int] = None,
) -> VectorizedISResult:
    """Importance sampling with all particles executed in lockstep.

    The estimator is identical to :func:`repro.inference.importance_sampling`
    (same proposal, same weights); only the execution strategy differs.
    ``backend="compiled"`` runs the fused batched kernel when the pair is in
    the compiled fragment (bitwise-identical results, lower dispatch cost);
    ``workers``/``shards`` distribute the population over the sharded
    execution layer (:mod:`repro.engine.shard`).
    """
    from repro.engine.backend import make_particle_runner

    vectorizer = make_particle_runner(
        model_program,
        guide_program,
        model_entry,
        guide_entry,
        obs_trace=obs_trace,
        model_args=model_args,
        guide_args=guide_args,
        latent_channel=latent_channel,
        obs_channel=obs_channel,
        backend=backend,
        jit=jit,
        session=session,
        workers=workers,
        shards=shards,
        # IS never reads the per-site score ledgers; keep them off the wire.
        trim_site_scores=True,
    )
    result = VectorizedISResult(vectorizer.run(num_particles, rng))
    if raise_on_all_zero and not np.any(np.isfinite(result.log_weights)):
        raise InferenceError(
            "all importance weights are zero: the guide's proposals never land "
            "in the model's support (the model/guide pair is not absolutely continuous)"
        )
    return result
