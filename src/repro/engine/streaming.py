"""Streaming-SMC sessions: persistent particle populations over live data.

One-shot requests answer "what is the posterior given this batch"; a
*streaming session* keeps a particle population alive between requests so a
client can push observations as they arrive and query the posterior-so-far
at any point.  :class:`StreamingSession` owns one population;
:class:`SessionManager` owns the session table — bounded by an
:class:`~repro.utils.lru.LruCache`, TTL-expired, per-tenant-capped, and
(optionally) checkpointed to disk so sessions survive process restarts.
The JSONL server exposes the manager through ``op: session.open / session.push
/ session.query / session.close`` (see ``docs/streaming.md``).

Determinism model — replay from seed
------------------------------------

A session is *event-sourced*: its durable state is just ``(config, seed,
observation journal)``.  Every push appends to the journal and recomputes
one-shot SMC over the whole prefix with the session's pinned integer seed.
The streamed state after ``T`` pushes therefore *is* the one-shot SMC run
over those ``T`` observations — bit-identical by construction, for both
backends and any shard count, which is exactly the guarantee the
determinism oracle (``tests/test_streaming.py``) pins.  The price is
an ``O(t)`` recompute per push instead of ``O(1)`` incremental extension;
the honest trade is documented in ``docs/streaming.md`` (population state
never needs to be serialised, checkpoints are a few hundred bytes, and the
compiled backend — whose kernels are straight-line and cannot suspend
mid-trace — works unchanged).

Two kinds of program ride a session:

* **Fixed sources** (any model/guide pair): the model demands a fixed number
  of observations.  While the journal is shorter than that demand the
  session is ``buffering`` — the runtimes signal this precisely via
  :class:`~repro.errors.TraceExhausted` — and becomes ``active`` once the
  demand is met.
* **Growable families** (``grow: true`` + a name from
  :data:`repro.models.library.STREAMING_FAMILIES`): the program is re-unrolled
  to the journal length on every push, so every push yields a posterior and
  the pair stays inside the compiled backend's straight-line fragment.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
import threading
import time
import uuid
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.engine.api import EngineResult, InferenceRequest, run_engine
from repro.engine.session import ProgramSession
from repro.errors import InferenceError, ReproError, TraceExhausted
from repro.obs import REGISTRY
from repro.utils.lru import LruCache

#: Structured error codes for session-table failures (the server forwards
#: them verbatim on ``ok: false`` responses).
CODE_SESSION_NOT_FOUND = "session_not_found"
CODE_SESSION_EXPIRED = "session_expired"
CODE_SESSION_LIMIT = "session_limit"

#: Checkpoint file format marker and version (bump on incompatible change).
CHECKPOINT_FORMAT = "repro-streaming-checkpoint"
CHECKPOINT_VERSION = 1

_SESSIONS = REGISTRY.gauge(
    "repro_streaming_sessions",
    "Streaming sessions currently live in the session table.",
)
_SESSION_EVENTS = REGISTRY.counter(
    "repro_streaming_session_events_total",
    "Session lifecycle events (opened, closed, expired, evicted, restored, "
    "rejected, checkpointed).",
    labels=("event",),
)
_SESSION_AGE = REGISTRY.histogram(
    "repro_streaming_session_age_seconds",
    "Session age at close/expiry/eviction.",
    buckets=(1.0, 10.0, 60.0, 300.0, 1800.0, 3600.0, 21600.0, 86400.0),
)
_SESSION_STEPS = REGISTRY.histogram(
    "repro_streaming_session_steps",
    "Journal length (observations pushed) at close/expiry/eviction.",
    buckets=(1, 2, 4, 8, 16, 32, 64, 128, 256),
)
_PUSH_SECONDS = REGISTRY.histogram(
    "repro_streaming_push_seconds",
    "Wall time of one session push: journal append plus the replay-from-seed "
    "SMC recompute (reweight + ESS-triggered resampling over the prefix).",
)
_CHECKPOINT_SECONDS = REGISTRY.histogram(
    "repro_streaming_checkpoint_seconds",
    "Checkpoint persistence time, by direction (save: serialise + atomic "
    "write; restore: read + verify + replay).",
    labels=("op",),
)
_CHECKPOINT_BYTES = REGISTRY.histogram(
    "repro_streaming_checkpoint_bytes",
    "Serialised checkpoint size on disk.",
    buckets=(256, 1024, 4096, 16384, 65536, 262144, 1048576),
)

#: ``params`` keys a ``session.open`` payload may set.
OPEN_PARAM_FIELDS = frozenset(
    {
        "num_particles",
        "seed",
        "backend",
        "shards",
        "workers",
        "ess_threshold",
        "rejuvenate",
        "model_args",
        "guide_args",
    }
)


class StreamingError(ReproError):
    """A session-table failure with a structured wire code."""

    def __init__(self, code: str, message: str):
        self.code = code
        super().__init__(message)


def _require_number(value: object, what: str) -> float:
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise StreamingError("invalid_request", f"{what} must be a number, got {value!r}")
    return float(value)


@dataclass
class StreamingConfig:
    """Everything that pins a session's behaviour (and its replay)."""

    model_source: Optional[str] = None
    guide_source: Optional[str] = None
    model_entry: Optional[str] = None
    guide_entry: Optional[str] = None
    latent_channel: str = "latent"
    obs_channel: str = "obs"
    #: Library benchmark name the sources came from (informational for fixed
    #: sources; *required* and resolved per push when ``grow`` is set).
    benchmark: Optional[str] = None
    #: Re-unroll a growable family (:data:`STREAMING_FAMILIES`) to the
    #: journal length on every push instead of running fixed sources.
    grow: bool = False
    num_particles: int = 1000
    #: The pinned integer seed: together with the journal it *is* the
    #: session state (replay-from-seed determinism).
    seed: int = 0
    backend: str = "interp"
    shards: Optional[int] = None
    workers: int = 1
    ess_threshold: float = 0.5
    rejuvenate: bool = True
    model_args: Tuple[object, ...] = ()
    guide_args: Tuple[object, ...] = ()
    #: Run even if the pair is not certified (mirrors the one-shot wire flag).
    force: bool = False
    #: Hard cap on journal length (pushes beyond it fail with
    #: ``session_limit``); bounds both replay cost and checkpoint size.
    max_steps: int = 256

    @classmethod
    def from_payload(
        cls, payload: Dict[str, object], default_workers: int = 1
    ) -> "StreamingConfig":
        """Build and validate a config from a ``session.open`` payload."""
        from repro.models import STREAMING_FAMILIES, get_benchmark

        params = dict(payload.get("params") or {})
        bad = sorted(set(params) - OPEN_PARAM_FIELDS)
        if bad:
            raise StreamingError(
                "invalid_request", f"unknown session.open params {bad}"
            )
        benchmark = payload.get("benchmark")
        grow = bool(payload.get("grow", False))
        model = payload.get("model")
        guide = payload.get("guide")
        if grow:
            if not isinstance(benchmark, str) or benchmark not in STREAMING_FAMILIES:
                known = ", ".join(sorted(STREAMING_FAMILIES))
                raise StreamingError(
                    "invalid_request",
                    f"grow: true needs a growable benchmark (known: {known})",
                )
            if model is not None or guide is not None:
                raise StreamingError(
                    "invalid_request",
                    "growable sessions take benchmark:, not model:/guide: sources",
                )
        elif isinstance(benchmark, str):
            try:
                bench = get_benchmark(benchmark)
            except KeyError:
                raise StreamingError(
                    "invalid_request", f"unknown benchmark {benchmark!r}"
                )
            model, guide = bench.model_source, bench.guide_source
            if params.get("model_args") is None and bench.model_args:
                params["model_args"] = list(bench.model_args)
            if params.get("guide_args") is None and bench.guide_param_inits:
                params["guide_args"] = list(bench.guide_param_inits.values())
        if not grow and (not isinstance(model, str) or not isinstance(guide, str)):
            raise StreamingError(
                "invalid_request",
                "session.open needs model/guide source text, a benchmark name, "
                "or grow: true with a growable benchmark",
            )
        seed = params.get("seed")
        if seed is None:
            seed = int.from_bytes(os.urandom(4), "big")
        if isinstance(seed, bool) or not isinstance(seed, int):
            raise StreamingError(
                "invalid_request", "session seed must be an integer (it is journaled)"
            )
        config = cls(
            model_source=model if not grow else None,
            guide_source=guide if not grow else None,
            model_entry=payload.get("model_entry"),
            guide_entry=payload.get("guide_entry"),
            latent_channel=payload.get("latent_channel", "latent"),
            obs_channel=payload.get("obs_channel", "obs"),
            benchmark=benchmark if isinstance(benchmark, str) else None,
            grow=grow,
            num_particles=int(params.get("num_particles", 1000)),
            seed=seed,
            backend=str(params.get("backend", "interp")),
            shards=params.get("shards"),
            workers=int(params.get("workers", default_workers)),
            ess_threshold=float(params.get("ess_threshold", 0.5)),
            rejuvenate=bool(params.get("rejuvenate", True)),
            model_args=tuple(params.get("model_args") or ()),
            guide_args=tuple(params.get("guide_args") or ()),
            force=bool(payload.get("force", False)),
            max_steps=int(payload.get("max_steps", 256)),
        )
        if config.num_particles <= 0:
            raise StreamingError("invalid_request", "num_particles must be positive")
        if config.max_steps <= 0:
            raise StreamingError("invalid_request", "max_steps must be positive")
        return config


class StreamingSession:
    """One live session: a pinned config, an observation journal, and the
    cached result of the latest replay."""

    def __init__(self, session_id: str, tenant: str, config: StreamingConfig):
        self.session_id = session_id
        self.tenant = tenant
        self.config = config
        self.journal: List[float] = []
        #: ``buffering`` until the model's observation demand is met, then
        #: ``active``.
        self.status = "buffering"
        self.steps_applied = 0
        self.result: Optional[EngineResult] = None
        self.created_wall = time.time()
        self.last_active_wall = self.created_wall
        # Monotonic timestamps are set by the owning SessionManager's clock.
        self.created_mono = 0.0
        self.last_active_mono = 0.0
        self.lock = threading.Lock()
        # Validate certification once, up front (growable families certify at
        # every length by construction, so length 1 is representative).
        session = self._program_session(max(1, len(self.journal)))
        if not session.certified and not config.force:
            raise StreamingError(
                "invalid_request",
                f"model/guide pair is not certified: {session.certification_reason} "
                "(pass force: true to open anyway)",
            )

    # -- program resolution ------------------------------------------------

    def _program_session(self, steps: int) -> ProgramSession:
        """The (LRU-cached) prepared pair for a journal of ``steps``."""
        config = self.config
        if config.grow:
            from repro.models import STREAMING_FAMILIES

            model, guide = STREAMING_FAMILIES[config.benchmark](steps)
        else:
            model, guide = config.model_source, config.guide_source
        return ProgramSession.from_sources(
            model,
            guide,
            model_entry=config.model_entry,
            guide_entry=config.guide_entry,
            latent_channel=config.latent_channel,
            obs_channel=config.obs_channel,
        )

    # -- the replay-from-seed core ----------------------------------------

    def _advance(self) -> None:
        """Recompute one-shot SMC over the journal prefix (pinned seed).

        Rebuilds the RNG from the seed every time, so the result depends
        only on ``(config, journal)`` — never on how the journal was split
        into pushes.  :class:`TraceExhausted` means the model wants more
        observations than the journal holds: the session keeps buffering.
        """
        if not self.journal:
            self.status = "buffering"
            return
        config = self.config
        session = self._program_session(len(self.journal))
        request = InferenceRequest(
            num_particles=config.num_particles,
            workers=config.workers,
            shards=config.shards,
            backend=config.backend,
            obs_values=list(self.journal),
            seed=config.seed,
            model_args=config.model_args,
            guide_args=config.guide_args,
            ess_threshold=config.ess_threshold,
            rejuvenate=config.rejuvenate,
        )
        try:
            result = run_engine("smc", session, request)
        except TraceExhausted:
            self.status = "buffering"
            return
        self.result = result
        self.steps_applied = len(result.raw.ess_history)
        self.status = "active"

    def push(self, values: Sequence[object]) -> Dict[str, object]:
        """Append observations to the journal and replay to the new prefix."""
        if not values:
            raise StreamingError("invalid_request", "session.push needs values")
        numbers = [_require_number(v, "observation") for v in values]
        if len(self.journal) + len(numbers) > self.config.max_steps:
            raise StreamingError(
                CODE_SESSION_LIMIT,
                f"session {self.session_id!r} journal is capped at "
                f"{self.config.max_steps} observations",
            )
        started = time.perf_counter()
        self.journal.extend(numbers)
        self._advance()
        _PUSH_SECONDS.observe(time.perf_counter() - started)
        return self.describe(push=True)

    def query(self, sites: Sequence[int]) -> Dict[str, object]:
        """Posterior summary of the latest replayed population."""
        body = self.describe()
        means: Dict[str, Optional[float]] = {}
        if self.result is not None:
            for site in sites:
                try:
                    means[str(int(site))] = float(self.result.posterior_mean(int(site)))
                except ReproError:
                    means[str(int(site))] = None
            body["diagnostics"] = self.result.diagnostics()
        body["posterior_means"] = means
        return body

    def describe(self, push: bool = False) -> Dict[str, object]:
        """The wire-facing summary body shared by push/query responses."""
        body: Dict[str, object] = {
            "session_id": self.session_id,
            "status": self.status,
            "steps": len(self.journal),
            "steps_applied": self.steps_applied,
        }
        unused = len(self.journal) - self.steps_applied
        if self.status == "active" and unused:
            # A fixed-demand model met its demand and the extra observations
            # can never be consumed: tell the client instead of dropping them
            # silently.
            body["unused_observations"] = unused
        if self.result is not None:
            body["log_evidence"] = float(self.result.log_evidence())
            body["effective_sample_size"] = float(self.result.effective_sample_size())
            if push:
                body["resample_steps"] = list(self.result.raw.resample_steps)
        return body

    # -- checkpointing -----------------------------------------------------

    def checkpoint_dict(self) -> Dict[str, object]:
        """The versioned, digest-protected durable form of this session."""
        body: Dict[str, object] = {
            "format": CHECKPOINT_FORMAT,
            "version": CHECKPOINT_VERSION,
            "session_id": self.session_id,
            "tenant": self.tenant,
            "seed": self.config.seed,
            "journal": list(self.journal),
            "config": dataclasses.asdict(self.config),
            "status": self.status,
            "steps_applied": self.steps_applied,
            "created_wall": self.created_wall,
            "last_active_wall": self.last_active_wall,
        }
        body["digest"] = _digest(body)
        return body

    @classmethod
    def from_checkpoint(cls, data: Dict[str, object]) -> "StreamingSession":
        """Rebuild a session from a checkpoint dict and replay its journal.

        Replay-from-seed makes restore exact: one SMC run over the journal
        reproduces the population bit-for-bit, however many pushes built it.
        """
        if not isinstance(data, dict) or data.get("format") != CHECKPOINT_FORMAT:
            raise StreamingError("invalid_request", "not a streaming checkpoint")
        if data.get("version") != CHECKPOINT_VERSION:
            raise StreamingError(
                "invalid_request",
                f"unsupported checkpoint version {data.get('version')!r} "
                f"(this build reads version {CHECKPOINT_VERSION})",
            )
        expected = data.get("digest")
        body = {k: v for k, v in data.items() if k != "digest"}
        if expected != _digest(body):
            raise StreamingError("invalid_request", "checkpoint digest mismatch")
        raw_config = dict(data["config"])
        raw_config["model_args"] = tuple(raw_config.get("model_args") or ())
        raw_config["guide_args"] = tuple(raw_config.get("guide_args") or ())
        raw_config["shards"] = raw_config.get("shards")
        config = StreamingConfig(**raw_config)
        session = cls(str(data["session_id"]), str(data["tenant"]), config)
        session.journal = [float(v) for v in data["journal"]]
        session.created_wall = float(data["created_wall"])
        session.last_active_wall = float(data["last_active_wall"])
        session._advance()
        return session


def _digest(body: Dict[str, object]) -> str:
    canonical = json.dumps(body, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


def checkpoint_filename(tenant: str, session_id: str) -> str:
    """Deterministic on-disk name for a (tenant, session) checkpoint.

    Hashed, not concatenated: tenants and ids are client-supplied strings
    and must never influence filesystem paths directly.
    """
    key = hashlib.sha256(f"{tenant}\x00{session_id}".encode("utf-8")).hexdigest()
    return f"{key[:32]}.json"


class SessionManager:
    """The bounded, TTL-expired, checkpointing session table.

    ``capacity`` bounds live sessions process-wide (LRU eviction past it —
    with a ``checkpoint_dir`` an evicted session persists to disk and
    transparently restores on next touch; without one it is simply gone).
    ``ttl_s`` expires idle sessions (lazily on touch plus via
    :meth:`sweep`); expired ids answer ``session_expired`` — distinguished
    from never-seen ids (``session_not_found``) through a bounded tombstone
    map.  ``per_tenant`` caps one tenant's live sessions
    (``session_limit``).  All methods are thread-safe (the server calls
    them from executor threads).
    """

    def __init__(
        self,
        capacity: int = 256,
        ttl_s: float = 600.0,
        per_tenant: int = 32,
        checkpoint_dir: Optional[str] = None,
        default_workers: int = 1,
        clock: Callable[[], float] = time.monotonic,
        wall_clock: Callable[[], float] = time.time,
    ):
        self.ttl_s = max(0.0, float(ttl_s))
        self.per_tenant = max(1, int(per_tenant))
        self.checkpoint_dir = checkpoint_dir
        self.default_workers = max(1, int(default_workers))
        self._clock = clock
        self._wall_clock = wall_clock
        self._lock = threading.RLock()
        self._table: "LruCache[str, StreamingSession]" = LruCache(
            max(1, int(capacity)), on_evict=self._on_evict
        )
        # Why a departed id departed: "expired" or "closed".  Bounded so a
        # scanning client cannot grow it without limit.
        self._tombstones: "LruCache[str, str]" = LruCache(4096)
        if checkpoint_dir:
            os.makedirs(checkpoint_dir, exist_ok=True)

    # -- lifecycle ---------------------------------------------------------

    def open(
        self,
        tenant: str,
        payload: Dict[str, object],
        session_id: Optional[str] = None,
    ) -> Dict[str, object]:
        """Create a session; returns the open-response body."""
        config = StreamingConfig.from_payload(payload, self.default_workers)
        with self._lock:
            self.sweep()
            live = sum(1 for s in self._table.values() if s.tenant == tenant)
            if live >= self.per_tenant:
                _SESSION_EVENTS.labels(event="rejected").inc()
                raise StreamingError(
                    CODE_SESSION_LIMIT,
                    f"tenant {tenant!r} already has {live} live sessions "
                    f"(cap {self.per_tenant})",
                )
            if session_id is not None:
                if not _valid_session_id(session_id):
                    raise StreamingError(
                        "invalid_request",
                        "session_id must be 1-64 chars of [A-Za-z0-9._-]",
                    )
                if session_id in self._table or self._checkpoint_exists(
                    tenant, session_id
                ):
                    raise StreamingError(
                        "invalid_request", f"session {session_id!r} already exists"
                    )
            else:
                session_id = uuid.uuid4().hex[:16]
            session = StreamingSession(session_id, tenant, config)
            now = self._clock()
            session.created_mono = session.last_active_mono = now
            session.created_wall = session.last_active_wall = self._wall_clock()
            self._table.put(session_id, session)
            self._tombstones.pop(session_id)
            # Persist immediately: a session is durable from the moment its
            # open is acknowledged, not from its first push — an abrupt kill
            # between the two must not lose it.
            self._checkpoint(session)
            _SESSION_EVENTS.labels(event="opened").inc()
            _SESSIONS.set(len(self._table))
            return {
                "session_id": session_id,
                "status": session.status,
                "steps": 0,
                "seed": config.seed,
                "grow": config.grow,
            }

    def get(self, tenant: str, session_id: str) -> StreamingSession:
        """Look up a live session, restoring from disk or raising structured
        ``session_expired`` / ``session_not_found`` errors."""
        with self._lock:
            session = self._table.get(session_id)
            if session is not None:
                if session.tenant != tenant:
                    # Existence must not leak across tenants.
                    raise self._not_found(session_id)
                if self._expired(session):
                    self._expire(session)
                    raise StreamingError(
                        CODE_SESSION_EXPIRED,
                        f"session {session_id!r} expired after {self.ttl_s:g}s idle",
                    )
                self._touch(session)
                return session
            reason = self._tombstones.get(session_id)
            if reason == "expired":
                raise StreamingError(
                    CODE_SESSION_EXPIRED,
                    f"session {session_id!r} expired after {self.ttl_s:g}s idle",
                )
            if reason == "closed":
                raise StreamingError(
                    CODE_SESSION_NOT_FOUND, f"session {session_id!r} was closed"
                )
            session = self._restore(tenant, session_id)
            if session is None:
                raise self._not_found(session_id)
            return session

    def push(self, tenant: str, session_id: str, values: Sequence[object]) -> Dict[str, object]:
        session = self.get(tenant, session_id)
        with session.lock:
            body = session.push(values)
        self._checkpoint(session)
        return body

    def query(self, tenant: str, session_id: str, sites: Sequence[int]) -> Dict[str, object]:
        session = self.get(tenant, session_id)
        with session.lock:
            return session.query(sites)

    def close(self, tenant: str, session_id: str) -> Dict[str, object]:
        """Drop a session deliberately (tombstoned; checkpoint removed)."""
        session = self.get(tenant, session_id)
        with self._lock:
            self._observe_end(session)
            self._table.pop(session_id)
            self._tombstones.put(session_id, "closed")
            self._remove_checkpoint(session)
            _SESSION_EVENTS.labels(event="closed").inc()
            _SESSIONS.set(len(self._table))
        return {"session_id": session_id, "closed": True, "steps": len(session.journal)}

    # -- TTL / eviction ----------------------------------------------------

    def sweep(self) -> int:
        """Expire every TTL-overdue session now; returns how many went."""
        if not self.ttl_s:
            return 0
        with self._lock:
            doomed = [s for s in self._table.values() if self._expired(s)]
            for session in doomed:
                self._expire(session)
            return len(doomed)

    def shutdown(self) -> int:
        """Checkpoint every live session and clear the table (server stop).

        With a checkpoint directory every session survives the restart —
        the restarted server restores them on first touch.  Returns the
        number of sessions persisted.
        """
        with self._lock:
            sessions = list(self._table.values())
            saved = 0
            for session in sessions:
                if self._checkpoint(session):
                    saved += 1
            self._table.clear()
            _SESSIONS.set(0)
            return saved

    def stats(self) -> Dict[str, object]:
        """Session-table snapshot for ``op: stats``."""
        with self._lock:
            now = self._clock()
            sessions = list(self._table.values())
            return {
                "live": len(sessions),
                "capacity": self._table.capacity,
                "ttl_s": self.ttl_s,
                "per_tenant": self.per_tenant,
                "evictions": self._table.evictions,
                "checkpoint_dir": self.checkpoint_dir,
                "oldest_idle_s": max(
                    (now - s.last_active_mono for s in sessions), default=0.0
                ),
            }

    # -- internals ---------------------------------------------------------

    def _not_found(self, session_id: str) -> StreamingError:
        return StreamingError(
            CODE_SESSION_NOT_FOUND, f"no session {session_id!r} (open one first)"
        )

    def _expired(self, session: StreamingSession) -> bool:
        return bool(self.ttl_s) and (
            self._clock() - session.last_active_mono > self.ttl_s
        )

    def _touch(self, session: StreamingSession) -> None:
        session.last_active_mono = self._clock()
        session.last_active_wall = self._wall_clock()

    def _expire(self, session: StreamingSession) -> None:
        self._observe_end(session)
        self._table.pop(session.session_id)
        self._tombstones.put(session.session_id, "expired")
        self._remove_checkpoint(session)
        _SESSION_EVENTS.labels(event="expired").inc()
        _SESSIONS.set(len(self._table))

    def _observe_end(self, session: StreamingSession) -> None:
        _SESSION_AGE.observe(max(0.0, self._clock() - session.created_mono))
        _SESSION_STEPS.observe(len(session.journal))

    def _on_evict(self, session_id: str, session: StreamingSession) -> None:
        # Capacity pressure: persist if we can (the session transparently
        # restores on next touch), then let it go either way.
        self._observe_end(session)
        self._checkpoint(session)
        _SESSION_EVENTS.labels(event="evicted").inc()

    def _checkpoint_path(self, tenant: str, session_id: str) -> Optional[str]:
        if not self.checkpoint_dir:
            return None
        return os.path.join(self.checkpoint_dir, checkpoint_filename(tenant, session_id))

    def _checkpoint_exists(self, tenant: str, session_id: str) -> bool:
        path = self._checkpoint_path(tenant, session_id)
        return path is not None and os.path.exists(path)

    def _checkpoint(self, session: StreamingSession) -> bool:
        """Atomically persist one session (tmp file + ``os.replace``)."""
        path = self._checkpoint_path(session.tenant, session.session_id)
        if path is None:
            return False
        started = time.perf_counter()
        body = json.dumps(session.checkpoint_dict(), sort_keys=True).encode("utf-8")
        tmp = f"{path}.tmp.{os.getpid()}"
        with open(tmp, "wb") as fh:
            fh.write(body)
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp, path)
        _CHECKPOINT_BYTES.observe(len(body))
        _CHECKPOINT_SECONDS.labels(op="save").observe(time.perf_counter() - started)
        _SESSION_EVENTS.labels(event="checkpointed").inc()
        return True

    def _remove_checkpoint(self, session: StreamingSession) -> None:
        path = self._checkpoint_path(session.tenant, session.session_id)
        if path is not None:
            try:
                os.remove(path)
            except OSError:
                pass

    def _restore(self, tenant: str, session_id: str) -> Optional[StreamingSession]:
        """Rebuild a session from its on-disk checkpoint, if one exists."""
        path = self._checkpoint_path(tenant, session_id)
        if path is None or not os.path.exists(path):
            return None
        started = time.perf_counter()
        try:
            with open(path, "r", encoding="utf-8") as fh:
                data = json.load(fh)
            session = StreamingSession.from_checkpoint(data)
        except (OSError, ValueError, KeyError, TypeError, ReproError) as exc:
            raise StreamingError(
                CODE_SESSION_NOT_FOUND,
                f"session {session_id!r} has an unreadable checkpoint: {exc}",
            )
        if session.tenant != tenant or session.session_id != session_id:
            return None
        if self.ttl_s and self._wall_clock() - session.last_active_wall > self.ttl_s:
            # Idle across the restart gap: same contract as in-memory TTL.
            self._tombstones.put(session_id, "expired")
            try:
                os.remove(path)
            except OSError:
                pass
            _SESSION_EVENTS.labels(event="expired").inc()
            raise StreamingError(
                CODE_SESSION_EXPIRED,
                f"session {session_id!r} expired after {self.ttl_s:g}s idle",
            )
        now = self._clock()
        session.created_mono = now  # monotonic clocks do not survive restarts
        session.last_active_mono = now
        session.last_active_wall = self._wall_clock()
        self._table.put(session_id, session)
        self._tombstones.pop(session_id)
        _CHECKPOINT_SECONDS.labels(op="restore").observe(time.perf_counter() - started)
        _SESSION_EVENTS.labels(event="restored").inc()
        _SESSIONS.set(len(self._table))
        return session


def _valid_session_id(session_id: str) -> bool:
    if not isinstance(session_id, str) or not 1 <= len(session_id) <= 64:
        return False
    return all(c.isalnum() or c in "._-" for c in session_id)
