"""Open-loop load generator for the batch-inference server.

Drives a *running* server (``repro serve``) over its JSONL-over-TCP protocol
at a configured offered rate with Poisson arrivals — open-loop means the
arrival process never waits for responses, so an overloaded server sees the
true offered load instead of a politely self-throttling client.  Traffic is
mixed: requests cycle through the configured models, engines, and tenants,
each with its own seed and an optional ``deadline_ms``.

The report measures what a capacity plan needs: client-observed latency
percentiles (p50/p90/p99 from a histogram, not means), outcome counts by
structured error code, the shed rate, and — crucially for the "no hangs"
guarantee — how many requests never got an answer at all.  ``repro loadgen``
prints the report and can append it to ``BENCH_results.json`` (schema 2,
the same artifact the benchmark harnesses write), so p99-under-load and
shed-rate-at-overload are tracked numbers.
"""

from __future__ import annotations

import asyncio
import json
import os
import signal
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.obs import HistogramValue, percentile_keys

#: Error codes counted as deliberate load shedding (mirrors the server's
#: SHED_CODES, restated here so the client is usable against older servers).
SHED_CODES = ("overloaded", "quota_exceeded", "deadline_exceeded", "shutting_down")

#: Every structured code a server response may carry.
KNOWN_CODES = SHED_CODES + (
    "invalid_request",
    "engine_error",
    "session_not_found",
    "session_expired",
    "session_limit",
)


@dataclass
class LoadConfig:
    """One load run: where to aim, how hard, and with what traffic mix."""

    host: str = "127.0.0.1"
    port: int = 7341
    #: Offered arrival rate in requests/second (Poisson; open-loop).
    rate: float = 50.0
    #: How long to keep generating arrivals, in seconds.
    duration_s: float = 5.0
    #: Per-request deadline forwarded on the wire (``None``: no deadline).
    deadline_ms: Optional[float] = 1000.0
    #: Number of distinct tenants to spread traffic across (``tenant-0``...).
    tenants: int = 2
    particles: int = 1000
    #: Engines cycled through per request.
    engines: Tuple[str, ...] = ("is",)
    #: Benchmark model names (see ``repro benchmarks``) cycled through.
    models: Tuple[str, ...] = ("weight",)
    seed: int = 0
    #: How long to wait for straggler responses after the last arrival.
    drain_timeout_s: float = 30.0
    #: Streaming traffic mode: arrivals drive ``session.*`` verbs (open /
    #: push / query cycles across ``sessions`` concurrent sessions) instead
    #: of one-shot ``infer`` requests.
    streaming: bool = False
    #: Concurrent streaming sessions cycled through (streaming mode only).
    sessions: int = 4
    #: Observations pushed per session before it is queried and replaced
    #: (``None``: the model's own observation count).
    pushes: Optional[int] = None
    #: Structured failure injection: SIGKILL one shard-pool worker this many
    #: seconds into the run (requires loadgen and server on one host).
    inject_kill_after_s: Optional[float] = None

    def describe(self) -> str:
        """One-line human summary of the offered load."""
        mode = f"streaming x{self.sessions} sessions, " if self.streaming else ""
        return (
            f"{self.rate:g} req/s x {self.duration_s:g}s "
            f"({mode}{'+'.join(self.models)} / {'+'.join(self.engines)}, "
            f"{self.particles} particles, {self.tenants} tenant(s), "
            f"deadline {self.deadline_ms if self.deadline_ms is not None else 'off'}ms)"
        )


@dataclass
class LoadReport:
    """What one open-loop run observed, client-side plus a server snapshot."""

    config: LoadConfig
    offered: int = 0
    answered: int = 0
    ok: int = 0
    by_code: Dict[str, int] = field(default_factory=dict)
    #: ``ok: false`` responses carrying no recognisable ``code`` — the
    #: structured-shedding contract says this must stay zero.
    unstructured_errors: int = 0
    latency: HistogramValue = field(default_factory=HistogramValue, repr=False)
    wall_time_s: float = 0.0
    #: ``op: stats`` snapshot fetched from the server after the run (the
    #: server-side percentiles come from the obs histograms), or ``None``
    #: when the server stopped answering — which the harness treats as a
    #: failed "server stays up" check.
    server_stats: Optional[Dict[str, object]] = None
    #: Sessions opened by streaming mode (capped), recorded so a later
    #: ``--verify-sessions`` pass can prove they survive a server restart.
    sessions: List[Dict[str, object]] = field(default_factory=list, repr=False)
    #: PID of the shard-pool worker SIGKILLed by failure injection, if any.
    injected_kill_pid: Optional[int] = None

    @property
    def unanswered(self) -> int:
        """Requests that never received a response line (client hangs)."""
        return self.offered - self.answered

    @property
    def shed(self) -> int:
        """Responses rejected by admission control or deadline enforcement."""
        return sum(self.by_code.get(code, 0) for code in SHED_CODES)

    @property
    def shed_rate(self) -> float:
        """Fraction of offered requests that were shed."""
        return self.shed / self.offered if self.offered else 0.0

    def percentiles(self) -> Dict[str, float]:
        """Client-observed latency percentiles (p50/p90/p99)."""
        return percentile_keys(self.latency, "latency_s")

    def healthy(self) -> bool:
        """The contract under overload: no hangs, every error structured."""
        return self.unanswered == 0 and self.unstructured_errors == 0

    def summary(self) -> str:
        """Multi-line human-readable report."""
        pct = self.percentiles()
        achieved = self.answered / self.wall_time_s if self.wall_time_s else 0.0
        lines = [
            f"offered  : {self.offered} requests ({self.config.describe()})",
            f"answered : {self.answered} ({achieved:.1f} resp/s), "
            f"unanswered {self.unanswered}",
            f"ok       : {self.ok}, shed {self.shed} "
            f"({100 * self.shed_rate:.1f}%), unstructured errors "
            f"{self.unstructured_errors}",
            f"by code  : {json.dumps(dict(sorted(self.by_code.items())))}",
            "latency  : p50 {p50:.1f}ms  p90 {p90:.1f}ms  p99 {p99:.1f}ms".format(
                p50=pct["latency_s_p50"] * 1e3,
                p90=pct["latency_s_p90"] * 1e3,
                p99=pct["latency_s_p99"] * 1e3,
            ),
        ]
        if self.config.streaming:
            kill = (
                f", injected worker kill pid {self.injected_kill_pid}"
                if self.injected_kill_pid is not None
                else ""
            )
            lines.append(f"sessions : {len(self.sessions)} opened{kill}")
        if self.server_stats is not None:
            lines.append(
                "server   : requests_total {rt}, shed_total {st}, "
                "wave_size_max {wm}, latency_s_p99 {p99}".format(
                    rt=self.server_stats.get("requests_total"),
                    st=self.server_stats.get("shed_total"),
                    wm=self.server_stats.get("wave_size_max"),
                    p99=self.server_stats.get("latency_s_p99"),
                )
            )
        else:
            lines.append("server   : stats unavailable (op: stats got no answer)")
        return "\n".join(lines)

    def bench_extra(self) -> Dict[str, object]:
        """The load-specific fields recorded into ``BENCH_results.json``."""
        out: Dict[str, object] = {
            "offered_rate": self.config.rate,
            "offered_requests": self.offered,
            "answered": self.answered,
            "unanswered": self.unanswered,
            "ok": self.ok,
            "shed": self.shed,
            "shed_rate": self.shed_rate,
            "by_code": dict(self.by_code),
            "unstructured_errors": self.unstructured_errors,
            "tenants": self.config.tenants,
            "deadline_ms": self.config.deadline_ms,
        }
        if self.config.streaming:
            out["streaming"] = True
            out["sessions_opened"] = len(self.sessions)
            out["injected_kill_pid"] = self.injected_kill_pid
        out.update(percentile_keys(self.latency, "client_latency_s"))
        if self.server_stats is not None:
            for key in (
                "latency_s_p50", "latency_s_p90", "latency_s_p99",
                "queue_wait_s_p99", "requests_per_s", "shed_total",
                "wave_size_max",
            ):
                if key in self.server_stats:
                    out[f"server_{key}"] = self.server_stats[key]
        return out


def build_payload(config: LoadConfig, index: int) -> Dict[str, object]:
    """The ``index``-th request of the mixed traffic cycle."""
    from repro.models import get_benchmark

    model_name = config.models[index % len(config.models)]
    engine = config.engines[index % len(config.engines)]
    bench = get_benchmark(model_name)
    payload: Dict[str, object] = {
        "id": f"lg-{index}",
        "model": bench.model_source,
        "guide": bench.guide_source,
        "engine": engine,
        "sites": [0],
        "tenant": f"tenant-{index % max(1, config.tenants)}",
        "params": {
            "num_particles": int(config.particles),
            "seed": int(config.seed) + index,
            "obs_values": list(bench.obs_values),
        },
    }
    if bench.guide_param_inits:
        # The established idiom (conformance + compiled-backend harnesses):
        # the guide's positional args are its param inits, in declaration
        # order.
        payload["params"]["guide_args"] = list(bench.guide_param_inits.values())
    if bench.model_args:
        payload["params"]["model_args"] = list(bench.model_args)
    if config.deadline_ms is not None:
        payload["deadline_ms"] = float(config.deadline_ms)
    return payload


def build_streaming_payload(
    config: LoadConfig,
    index: int,
    slots: List[Dict[str, int]],
    sessions_log: List[Dict[str, object]],
) -> Dict[str, object]:
    """The ``index``-th streaming arrival: advance one slot's open/push/query cycle.

    Each of ``config.sessions`` slots cycles through ``session.open``, one
    ``session.push`` per arrival, and a closing ``session.query`` before
    starting a fresh cycle.  Session ids are client-chosen
    (``lg{seed}-{slot}-{cycle}``) so the open-loop arrival process never has
    to wait for the open's response before pushing — the server executes
    same-session ops in arrival order.  Sessions are deliberately never
    closed: a later ``--verify-sessions`` pass re-queries the recorded ids to
    prove they survived a restart via checkpoints.
    """
    from repro.models import STREAMING_FAMILIES, get_benchmark

    slot = index % max(1, config.sessions)
    state = slots[slot]
    model_name = config.models[slot % len(config.models)]
    bench = get_benchmark(model_name)
    pushes = int(config.pushes) if config.pushes else max(1, len(bench.obs_values))
    tenant = f"tenant-{slot % max(1, config.tenants)}"
    session_id = f"lg{config.seed}-{slot}-{state['cycle']}"
    step = state["step"]

    payload: Dict[str, object] = {
        "id": f"lg-{index}",
        "tenant": tenant,
        "session_id": session_id,
    }
    if step == 0:
        payload["op"] = "session.open"
        payload["benchmark"] = model_name
        if model_name in STREAMING_FAMILIES:
            payload["grow"] = True
        payload["params"] = {
            "num_particles": int(config.particles),
            "seed": int(config.seed) + index,
        }
        if len(sessions_log) < 256:
            sessions_log.append(
                {"session_id": session_id, "tenant": tenant, "model": model_name}
            )
        state["step"] = 1
    elif step <= pushes:
        payload["op"] = "session.push"
        payload["values"] = [
            float(bench.obs_values[(step - 1) % len(bench.obs_values)])
        ]
        state["step"] = step + 1
    else:
        payload["op"] = "session.query"
        payload["sites"] = [0]
        state["step"] = 0
        state["cycle"] += 1
    if config.deadline_ms is not None:
        payload["deadline_ms"] = float(config.deadline_ms)
    return payload


async def run_load(config: LoadConfig) -> LoadReport:
    """Drive one open-loop run against a live server and report on it."""
    import numpy as np

    rng = np.random.default_rng(config.seed)
    report = LoadReport(config=config)
    sent_at: Dict[str, float] = {}
    answered: Dict[str, Dict[str, object]] = {}

    # One connection per tenant: concurrent JSONL streams, answers matched
    # by id within each stream.
    conns: List[Tuple[asyncio.StreamReader, asyncio.StreamWriter]] = []
    for _ in range(max(1, config.tenants)):
        reader, writer = await asyncio.open_connection(config.host, config.port)
        conns.append((reader, writer))

    async def read_loop(reader: asyncio.StreamReader) -> None:
        while True:
            line = await reader.readline()
            if not line:
                return
            try:
                response = json.loads(line)
            except json.JSONDecodeError:
                continue
            rid = response.get("id")
            now = time.monotonic()
            if rid in sent_at and rid not in answered:
                answered[rid] = response
                report.latency.observe(now - sent_at[rid])

    readers = [asyncio.create_task(read_loop(reader)) for reader, _ in conns]

    async def inject_kill() -> None:
        # Structured failure injection: SIGKILL one shard-pool worker
        # mid-run.  The pool rebuilds (bounded by its failure budget) and
        # sessions recover from checkpoints — the report's outcome counts
        # plus a --verify-sessions pass prove it.
        await asyncio.sleep(float(config.inject_kill_after_s or 0.0))
        stats = await fetch_stats_raw(config.host, config.port)
        pool = (stats or {}).get("pool")
        pids = pool.get("worker_pids") if isinstance(pool, dict) else None
        if pids:
            try:
                os.kill(int(pids[0]), signal.SIGKILL)
                report.injected_kill_pid = int(pids[0])
            except (OSError, ValueError):
                pass

    kill_task = (
        asyncio.create_task(inject_kill())
        if config.inject_kill_after_s is not None
        else None
    )

    slots: List[Dict[str, int]] = [
        {"cycle": 0, "step": 0} for _ in range(max(1, config.sessions))
    ]
    started = time.monotonic()
    horizon = started + config.duration_s
    index = 0
    next_arrival = started
    while next_arrival < horizon:
        delay = next_arrival - time.monotonic()
        if delay > 0:
            await asyncio.sleep(delay)
        if config.streaming:
            # Same-session ops must share a connection so they reach the
            # server in arrival order; slot -> tenant -> connection is fixed.
            slot = index % max(1, config.sessions)
            payload = build_streaming_payload(config, index, slots, report.sessions)
            _, writer = conns[slot % len(conns)]
        else:
            payload = build_payload(config, index)
            _, writer = conns[index % len(conns)]
        sent_at[payload["id"]] = time.monotonic()
        # Open-loop: write without awaiting drain, so a slow server never
        # throttles the arrival process.
        writer.write(json.dumps(payload).encode("utf-8") + b"\n")
        index += 1
        next_arrival += float(rng.exponential(1.0 / config.rate))
    report.offered = index

    drain_until = time.monotonic() + config.drain_timeout_s
    while len(answered) < report.offered and time.monotonic() < drain_until:
        await asyncio.sleep(0.05)
    report.wall_time_s = time.monotonic() - started

    for _, writer in conns:
        writer.close()
    if kill_task is not None:
        kill_task.cancel()
        await asyncio.gather(kill_task, return_exceptions=True)
    for task in readers:
        task.cancel()
    await asyncio.gather(*readers, return_exceptions=True)

    report.answered = len(answered)
    for response in answered.values():
        if response.get("ok"):
            report.ok += 1
            continue
        code = response.get("code")
        if isinstance(code, str) and code in KNOWN_CODES:
            report.by_code[code] = report.by_code.get(code, 0) + 1
        else:
            report.unstructured_errors += 1

    report.server_stats = await fetch_stats(config.host, config.port)
    return report


async def fetch_stats_raw(
    host: str, port: int, timeout_s: float = 10.0
) -> Optional[Dict[str, object]]:
    """One ``op: stats`` round trip returning the full response dict."""
    try:
        reader, writer = await asyncio.open_connection(host, port)
        writer.write(b'{"op": "stats", "id": "loadgen-stats"}\n')
        await writer.drain()
        line = await asyncio.wait_for(reader.readline(), timeout=timeout_s)
        writer.close()
        response = json.loads(line)
        return response if isinstance(response, dict) else None
    except (OSError, ValueError, asyncio.TimeoutError):
        return None


async def fetch_stats(host: str, port: int, timeout_s: float = 10.0) -> Optional[Dict[str, object]]:
    """One ``op: stats`` round trip; ``None`` if the server is unreachable."""
    response = await fetch_stats_raw(host, port, timeout_s)
    counters = (response or {}).get("counters")
    return counters if isinstance(counters, dict) else None


async def run_session_verify(
    host: str,
    port: int,
    sessions: List[Dict[str, object]],
    timeout_s: float = 30.0,
) -> Dict[str, object]:
    """Re-query recorded sessions against a (possibly restarted) server.

    The recovery check behind ``repro loadgen --verify-sessions``: every
    session a streaming run opened should answer ``session.query`` again —
    after a worker kill, and after a full server restart pointed at the same
    ``--checkpoint-dir`` (restore-on-miss rebuilds each session from its
    checkpoint and replays the journal).
    """
    results: Dict[str, object] = {"checked": 0, "recovered": 0, "failed": []}
    reader, writer = await asyncio.open_connection(host, port)
    try:
        for i, entry in enumerate(sessions):
            payload = {
                "id": f"verify-{i}",
                "op": "session.query",
                "tenant": entry.get("tenant"),
                "session_id": entry.get("session_id"),
            }
            writer.write(json.dumps(payload).encode("utf-8") + b"\n")
            await writer.drain()
            line = await asyncio.wait_for(reader.readline(), timeout=timeout_s)
            response = json.loads(line)
            results["checked"] = int(results["checked"]) + 1
            if response.get("ok"):
                results["recovered"] = int(results["recovered"]) + 1
            else:
                results["failed"].append(  # type: ignore[union-attr]
                    {
                        "session_id": entry.get("session_id"),
                        "code": response.get("code"),
                        "error": response.get("error"),
                    }
                )
    finally:
        writer.close()
    return results


def record_bench_entry(
    report: LoadReport, path: Optional[str] = None, suite: str = "load"
) -> str:
    """Append one load entry to ``BENCH_results.json`` (schema 3).

    Delegates to :mod:`repro.bench.results` (the in-package counterpart of
    ``benchmarks/_record.py``) so the CLI works from an installed package
    without the benchmarks directory on path, and so prior-schema artifacts
    migrate instead of being reset.
    """
    from repro.bench import results as bench_results

    entry: Dict[str, object] = {
        "suite": suite,
        "model": "+".join(report.config.models),
        "engine": "+".join(report.config.engines),
        "backend": "interp",
        "particles": report.config.particles,
        "wall_time_s": report.wall_time_s,
        "speedup": None,
        "baseline": None,
    }
    entry.update(report.bench_extra())
    return str(bench_results.append_run_entry(entry, f"loadgen-{os.getpid()}", path))


def parse_csv(text: str) -> Tuple[str, ...]:
    """Split a ``--engines is,smc``-style comma list into a tuple."""
    items = tuple(part.strip() for part in text.split(",") if part.strip())
    if not items:
        raise ValueError(f"empty list {text!r}")
    return items


def report_as_json(report: LoadReport) -> Dict[str, object]:
    """The whole report as one JSON-serialisable dict (``--json`` output)."""
    out: Dict[str, object] = {
        "offered": report.offered,
        "answered": report.answered,
        "unanswered": report.unanswered,
        "ok": report.ok,
        "shed": report.shed,
        "shed_rate": report.shed_rate,
        "by_code": dict(report.by_code),
        "unstructured_errors": report.unstructured_errors,
        "wall_time_s": report.wall_time_s,
        "healthy": report.healthy(),
        "server_stats": report.server_stats,
    }
    if report.config.streaming:
        out["streaming"] = True
        out["sessions"] = list(report.sessions)
        out["injected_kill_pid"] = report.injected_kill_pid
    out.update(report.percentiles())
    return out
