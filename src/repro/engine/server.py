"""Async batch-inference service: queueing, coalescing, and a TCP front-end.

:class:`InferenceService` is the serving layer the ROADMAP's north star asks
for: callers submit JSON-shaped inference requests concurrently; a dispatcher
drains the queue in batches, groups requests that target the same prepared
:class:`~repro.engine.session.ProgramSession`, and executes each group on the
sharded execution layer (:mod:`repro.engine.shard`) — importance-sampling
requests for the same session are *coalesced*: their shard tasks are
concatenated into one pool submission wave, so four concurrent requests cost
one warm-pool round trip instead of four.  Coalescing only changes
scheduling, never values: every request's shard plan and RNG streams are
derived exactly as they would be for a solo run, and each request merges only
its own shards.

The service is bounded and fair, not best-effort: admission control rejects
work beyond ``max_queue`` immediately (error code ``overloaded``) instead of
queueing unboundedly, per-request deadlines (``deadline_ms`` on the wire)
shed expired requests *before* dispatch with ``deadline_exceeded`` — an
expired request is never executed — per-tenant token buckets
(``tenant_rate``/``tenant_burst``) cap each tenant's admitted rate
(``quota_exceeded``), and the dispatcher collects each wave round-robin
across per-tenant queues (capped at ``max_batch`` requests per wave) so one
tenant's burst cannot starve another's.  Every rejection is a structured
``ok: false`` response with a machine-readable ``code`` — clients never
hang on a silently dropped request, including across :meth:`stop`, which
resolves both queued and in-flight requests before returning.

Results stream back as each request completes (futures resolve
out-of-order), and the service keeps throughput/latency counters
(:class:`ServerCounters`) that the benchmark harness exports into
``BENCH_results.json``.

:func:`serve_tcp` exposes the service over a newline-delimited-JSON TCP
protocol (one request object per line, one response object per line, matched
by ``id``), which is what the ``repro serve`` CLI subcommand runs; the
``repro loadgen`` open-loop load generator (:mod:`repro.engine.loadgen`)
drives it at a configured offered rate.
"""

from __future__ import annotations

import asyncio
import dataclasses
import json
import time
from collections import OrderedDict, deque
from dataclasses import dataclass, field
from typing import Deque, Dict, List, Optional, Tuple

from repro.engine.api import EngineResult, InferenceRequest, available_engines, run_engine
from repro.engine.session import ProgramSession
from repro.engine.streaming import (
    CODE_SESSION_EXPIRED,
    CODE_SESSION_LIMIT,
    CODE_SESSION_NOT_FOUND,
    SessionManager,
    StreamingError,
)
from repro.errors import InferenceError, ReproError
from repro.obs import REGISTRY, HistogramValue, percentile_keys, span

_REQUESTS = REGISTRY.counter(
    "repro_requests_total",
    "Requests accepted by the inference service, by outcome.",
    labels=("status",),
)
_REQUEST_LATENCY = REGISTRY.histogram(
    "repro_request_latency_seconds",
    "Enqueue-to-response latency of successful requests.",
)
_REQUEST_QUEUE_WAIT = REGISTRY.histogram(
    "repro_request_queue_wait_seconds",
    "Enqueue-to-dispatch wait of successful requests.",
)
_REQUEST_RUN = REGISTRY.histogram(
    "repro_request_run_seconds",
    "Engine busy time attributed to each successful request (a coalesced "
    "request accounts for its share of the wave, not the whole wave).",
)
_SERVER_BATCHES = REGISTRY.counter(
    "repro_server_batches_total",
    "Dispatch groups executed by the batching dispatcher.",
)
_SERVER_COALESCED = REGISTRY.counter(
    "repro_server_coalesced_requests_total",
    "Requests that shared a dispatch group with at least one other request "
    "for the same session.",
)
_SERVER_BATCH_SIZE = REGISTRY.histogram(
    "repro_server_batch_size",
    "Requests per dispatch group (coalescing depth).",
    buckets=(1, 2, 4, 8, 16, 32, 64, 128),
)
_SERVER_PARTICLES = REGISTRY.counter(
    "repro_server_particles_total",
    "Particles requested across all accepted requests.",
)
_SERVER_SHED = REGISTRY.counter(
    "repro_server_shed_total",
    "Requests shed by admission control or deadline enforcement, by reason "
    "(overloaded: queue full; quota_exceeded: tenant bucket empty; "
    "deadline_exceeded: expired before execution; shutting_down: resolved "
    "by stop()).",
    labels=("reason",),
)
_SERVER_QUEUE_DEPTH = REGISTRY.gauge(
    "repro_server_queue_depth",
    "Requests currently admitted and waiting for dispatch (all tenants).",
)
_SERVER_TENANT_REQUESTS = REGISTRY.counter(
    "repro_server_tenant_requests_total",
    "Requests reaching admission control, by tenant.",
    labels=("tenant",),
)
_SERVER_WAVE_SIZE = REGISTRY.histogram(
    "repro_server_wave_size",
    "Requests collected into one dispatch wave (bounded by max_batch).",
    buckets=(1, 2, 4, 8, 16, 32, 64, 128, 256),
)

#: Fields a request payload may set on :class:`InferenceRequest`.
REQUEST_FIELDS = frozenset(f.name for f in dataclasses.fields(InferenceRequest))

#: Payload keys interpreted by the service itself (everything else under
#: ``params`` must be an :class:`InferenceRequest` field).
PAYLOAD_KEYS = frozenset(
    {
        "id",
        "op",
        "model",
        "guide",
        "model_entry",
        "guide_entry",
        "latent_channel",
        "obs_channel",
        "engine",
        "sites",
        "force",
        "params",
        "deadline_ms",
        "tenant",
    }
)

#: Per-op payload key sets for the streaming-session verbs.  Every session
#: op also rides the normal admission pipeline (quota, deadline, queue
#: bound), so the shared service keys appear in each set.
_SESSION_COMMON_KEYS = frozenset({"id", "op", "tenant", "deadline_ms", "session_id"})
SESSION_OPS: Dict[str, frozenset] = {
    "session.open": _SESSION_COMMON_KEYS
    | frozenset(
        {
            "model",
            "guide",
            "model_entry",
            "guide_entry",
            "latent_channel",
            "obs_channel",
            "benchmark",
            "grow",
            "force",
            "params",
            "max_steps",
        }
    ),
    "session.push": _SESSION_COMMON_KEYS | frozenset({"values"}),
    "session.query": _SESSION_COMMON_KEYS | frozenset({"sites"}),
    "session.close": _SESSION_COMMON_KEYS,
}

#: Machine-readable error codes carried by every ``ok: false`` response.
CODE_INVALID_REQUEST = "invalid_request"
CODE_OVERLOADED = "overloaded"
CODE_QUOTA_EXCEEDED = "quota_exceeded"
CODE_DEADLINE_EXCEEDED = "deadline_exceeded"
CODE_SHUTTING_DOWN = "shutting_down"
CODE_ENGINE_ERROR = "engine_error"

#: Codes that mean "the server chose not to run this" (admission control or
#: deadline enforcement) rather than "this request was wrong or blew up".
SHED_CODES = frozenset(
    {CODE_OVERLOADED, CODE_QUOTA_EXCEEDED, CODE_DEADLINE_EXCEEDED, CODE_SHUTTING_DOWN}
)

#: Tenant requests fall back to this bucket when the payload names none.
DEFAULT_TENANT = "default"


@dataclass
class ServerCounters:
    """Throughput and latency counters for one service instance.

    All times are seconds.  ``queue_wait`` measures enqueue-to-dispatch,
    ``run`` measures engine execution, and ``latency`` measures
    enqueue-to-response — the numbers a capacity plan needs.

    Failed requests count toward ``requests_total``/``failures_total`` (and
    their particles toward ``particles_total``) but are *excluded* from every
    latency aggregate: a request rejected at validation in microseconds — or
    one that blew up mid-run — says nothing about serving latency, and
    folding it in used to drag the means toward zero.  The instance also
    feeds the process-wide metrics registry, so a ``/metrics`` scrape sees
    the same story as an ``op: stats`` snapshot.
    """

    requests_total: int = 0
    failures_total: int = 0
    batches_total: int = 0
    #: Requests that shared a dispatch batch with at least one other request
    #: for the same session (i.e. rode a coalesced wave).
    coalesced_requests_total: int = 0
    particles_total: int = 0
    #: Requests the server declined to run, keyed by shed reason
    #: (``overloaded``, ``quota_exceeded``, ``deadline_exceeded``,
    #: ``shutting_down``).  Sheds also count toward ``requests_total`` and
    #: ``failures_total``.
    shed_total: Dict[str, int] = field(default_factory=dict)
    #: Dispatch waves collected so far, and the largest one — under a burst
    #: the max pins the ``max_batch`` bound.
    waves_total: int = 0
    wave_size_max: int = 0
    queue_wait_s_total: float = 0.0
    run_s_total: float = 0.0
    latency_s_total: float = 0.0
    latency_s_max: float = 0.0
    started_at: float = field(default_factory=time.monotonic)
    latency_hist: HistogramValue = field(default_factory=HistogramValue, repr=False)
    queue_wait_hist: HistogramValue = field(default_factory=HistogramValue, repr=False)
    run_hist: HistogramValue = field(default_factory=HistogramValue, repr=False)

    def observe(
        self,
        queue_wait_s: float,
        run_s: float,
        particles: int,
        ok: bool,
        busy_s: Optional[float] = None,
        latency_s: Optional[float] = None,
    ) -> None:
        """Fold one finished request into the counters.

        ``run_s`` is the request's perceived execution time (for latency);
        ``busy_s``, when given, is its share of actual engine busy time —
        requests that rode one coalesced wave each perceive the whole wave
        but only account for a fraction of it, so throughput rates stay
        honest.  ``latency_s`` is the measured enqueue-to-response time; it
        covers validation and response serialisation too, so it is always
        ``>= queue_wait_s + run_s`` (which remains the fallback when no
        measurement is passed).  Failures are tallied but kept out of the
        latency aggregates.
        """
        self.requests_total += 1
        self.particles_total += int(particles)
        _REQUESTS.labels(status="ok" if ok else "error").inc()
        _SERVER_PARTICLES.inc(int(particles))
        if not ok:
            self.failures_total += 1
            return
        latency = (queue_wait_s + run_s) if latency_s is None else latency_s
        busy = run_s if busy_s is None else busy_s
        self.queue_wait_s_total += queue_wait_s
        self.run_s_total += busy
        self.latency_s_total += latency
        self.latency_s_max = max(self.latency_s_max, latency)
        self.latency_hist.observe(latency)
        self.queue_wait_hist.observe(queue_wait_s)
        self.run_hist.observe(busy)
        _REQUEST_LATENCY.observe(latency)
        _REQUEST_QUEUE_WAIT.observe(queue_wait_s)
        _REQUEST_RUN.observe(busy)

    def observe_shed(self, reason: str) -> None:
        """Record one request the server declined to run (``reason`` code)."""
        self.requests_total += 1
        self.failures_total += 1
        self.shed_total[reason] = self.shed_total.get(reason, 0) + 1
        _REQUESTS.labels(status="shed").inc()
        _SERVER_SHED.labels(reason=reason).inc()

    def observe_batch(self, group_size: int) -> None:
        """Record one executed dispatch group of ``group_size`` requests."""
        self.batches_total += 1
        _SERVER_BATCHES.inc()
        _SERVER_BATCH_SIZE.observe(group_size)
        if group_size > 1:
            self.coalesced_requests_total += group_size
            _SERVER_COALESCED.inc(group_size)

    def observe_wave(self, wave_size: int) -> None:
        """Record one collected dispatch wave of ``wave_size`` requests."""
        self.waves_total += 1
        self.wave_size_max = max(self.wave_size_max, wave_size)
        _SERVER_WAVE_SIZE.observe(wave_size)

    def snapshot(self) -> Dict[str, object]:
        """The counters plus derived rates and percentiles, as one JSON dict.

        Means and percentiles cover successful requests only (see the class
        docstring); the percentile keys (``latency_s_p50``/``p90``/``p99``
        and friends) are histogram-derived estimates, ``nan`` until the
        first success lands.
        """
        uptime = max(time.monotonic() - self.started_at, 1e-9)
        succeeded = max(self.requests_total - self.failures_total, 1)
        out: Dict[str, object] = {
            "requests_total": self.requests_total,
            "failures_total": self.failures_total,
            "batches_total": self.batches_total,
            "coalesced_requests_total": self.coalesced_requests_total,
            "particles_total": self.particles_total,
            "shed_total": sum(self.shed_total.values()),
            "shed_by_reason": dict(self.shed_total),
            "waves_total": self.waves_total,
            "wave_size_max": self.wave_size_max,
            "uptime_s": uptime,
            "requests_per_s": self.requests_total / uptime,
            "particles_per_s": self.particles_total / max(self.run_s_total, 1e-9),
            "queue_wait_s_mean": self.queue_wait_s_total / succeeded,
            "run_s_mean": self.run_s_total / succeeded,
            "latency_s_mean": self.latency_s_total / succeeded,
            "latency_s_max": self.latency_s_max,
        }
        out.update(percentile_keys(self.latency_hist, "latency_s"))
        out.update(percentile_keys(self.queue_wait_hist, "queue_wait_s"))
        out.update(percentile_keys(self.run_hist, "run_s"))
        return out


@dataclass(eq=False)  # identity semantics: instances live in the in-flight set
class _Pending:
    """One accepted request waiting in (or moving through) the queue."""

    payload: Dict[str, object]
    session: Optional[ProgramSession]
    engine: str
    request: Optional[InferenceRequest]
    sites: List[int]
    future: "asyncio.Future[Dict[str, object]]"
    tenant: str = DEFAULT_TENANT
    #: The streaming-session verb (``open``/``push``/``query``/``close``)
    #: when this is a session op rather than an inference request.
    session_op: Optional[str] = None
    #: Monotonic time after which the request must not execute (``None``:
    #: no deadline).  Measured from arrival, before validation.
    deadline_at: Optional[float] = None
    enqueued_at: float = field(default_factory=time.monotonic)
    dispatched_at: float = 0.0
    batch_size: int = 1


class _TokenBucket:
    """Per-tenant admission quota: ``rate`` tokens/s, capped at ``burst``."""

    __slots__ = ("rate", "burst", "tokens", "updated_at")

    def __init__(self, rate: float, burst: float, now: float):
        self.rate = float(rate)
        self.burst = max(1.0, float(burst))
        self.tokens = self.burst
        self.updated_at = now

    def try_take(self, now: float) -> bool:
        """Refill by elapsed time, then spend one token if available."""
        self.tokens = min(self.burst, self.tokens + (now - self.updated_at) * self.rate)
        self.updated_at = now
        if self.tokens >= 1.0:
            self.tokens -= 1.0
            return True
        return False


class InferenceService:
    """Coalescing batch-inference front-end over prepared program sessions.

    ``workers`` sizes the shared shard pool (and is the default worker count
    for requests that do not pin their own); ``batch_window_s`` optionally
    holds each dispatch batch open a little longer so concurrent callers can
    land in the same wave.  ``max_queue`` bounds the number of admitted
    requests waiting for dispatch (overflow is rejected with ``overloaded``),
    ``max_batch`` bounds each dispatch wave, and ``tenant_rate`` /
    ``tenant_burst`` enable a per-tenant token-bucket quota (``None``
    disables quotas).  Use as::

        service = InferenceService(workers=4, max_queue=256)
        await service.start()
        response = await service.submit({"model": ..., "guide": ..., ...})
        await service.stop()
    """

    def __init__(
        self,
        workers: int = 1,
        batch_window_s: float = 0.0,
        max_queue: int = 256,
        max_batch: int = 32,
        tenant_rate: Optional[float] = None,
        tenant_burst: Optional[float] = None,
        session_ttl_s: float = 600.0,
        max_sessions: int = 256,
        sessions_per_tenant: int = 32,
        checkpoint_dir: Optional[str] = None,
    ):
        self.workers = max(1, int(workers))
        self.batch_window_s = max(0.0, float(batch_window_s))
        self.max_queue = max(1, int(max_queue))
        self.max_batch = max(1, int(max_batch))
        self.tenant_rate = None if tenant_rate is None else max(0.0, float(tenant_rate))
        if tenant_burst is None:
            tenant_burst = max(1.0, self.tenant_rate or 1.0)
        self.tenant_burst = max(1.0, float(tenant_burst))
        #: The streaming-session table (``op: session.*`` verbs); bounded,
        #: TTL-expired, and — with ``checkpoint_dir`` — durable across
        #: restarts.
        self.sessions = SessionManager(
            capacity=max_sessions,
            ttl_s=session_ttl_s,
            per_tenant=sessions_per_tenant,
            checkpoint_dir=checkpoint_dir,
            default_workers=self.workers,
        )
        self.counters = ServerCounters()
        # Per-tenant FIFO queues, serviced round-robin by the dispatcher.
        # All queue state is touched only on the event-loop thread, so no
        # locking is needed.
        self._queues: "OrderedDict[str, Deque[_Pending]]" = OrderedDict()
        self._queued = 0
        self._buckets: Dict[str, _TokenBucket] = {}
        self._inflight: "set[_Pending]" = set()
        self._wake: Optional[asyncio.Event] = None
        self._dispatcher: Optional[asyncio.Task] = None
        self._sweeper: Optional[asyncio.Task] = None
        self._stopping = False

    # -- lifecycle ---------------------------------------------------------

    async def start(self) -> None:
        """Create the queues, pre-warm the shard pool, start the dispatcher."""
        from repro.engine.shard import ensure_pool

        self._queues = OrderedDict()
        self._queued = 0
        self._wake = asyncio.Event()
        self._stopping = False
        # Fork the pool before any executor threads exist: forking a
        # multi-threaded process can deadlock the children.
        if self.workers > 1:
            await asyncio.get_running_loop().run_in_executor(None, ensure_pool, self.workers)
        self._dispatcher = asyncio.create_task(self._dispatch_loop())
        if self.sessions.ttl_s:
            self._sweeper = asyncio.create_task(self._sweep_loop())

    async def _sweep_loop(self) -> None:
        """Periodically expire TTL-overdue streaming sessions.

        Lazy expiry on touch already guarantees an expired session never
        answers; the sweep just reclaims memory for sessions nobody touches
        again.
        """
        interval = max(1.0, min(30.0, self.sessions.ttl_s / 10.0))
        loop = asyncio.get_running_loop()
        while True:
            await asyncio.sleep(interval)
            await loop.run_in_executor(None, self.sessions.sweep)

    async def stop(self) -> None:
        """Stop the dispatcher; resolve every queued and in-flight request.

        No accepted request is abandoned: requests still queued (and any
        wave the cancelled dispatcher had in hand) resolve with a structured
        ``shutting_down`` response, and requests already executing are
        awaited, so every caller gets exactly one response.  Streaming
        sessions are not abandoned either: queued/in-flight session ops
        resolve like any other request (``shutting_down``), and the session
        table itself is checkpointed to disk (when a checkpoint directory is
        configured) so every open session survives the restart.
        """
        self._stopping = True
        if self._sweeper is not None:
            self._sweeper.cancel()
            try:
                await self._sweeper
            except asyncio.CancelledError:
                pass
            self._sweeper = None
        if self._dispatcher is not None:
            self._dispatcher.cancel()
            try:
                await self._dispatcher
            except asyncio.CancelledError:
                pass
            self._dispatcher = None
        for queue in self._queues.values():
            for pending in queue:
                self.counters.observe_shed(CODE_SHUTTING_DOWN)
                _resolve_future(
                    pending.future,
                    self._error_response(
                        pending.payload,
                        InferenceError("server shutting down"),
                        code=CODE_SHUTTING_DOWN,
                    ),
                )
        self._queues.clear()
        self._queued = 0
        _SERVER_QUEUE_DEPTH.set(0)
        if self._inflight:
            await asyncio.gather(
                *(pending.future for pending in list(self._inflight)),
                return_exceptions=True,
            )
        # Only after every in-flight push has resolved is the table quiescent
        # and safe to persist.
        await asyncio.get_running_loop().run_in_executor(None, self.sessions.shutdown)

    # -- request intake ----------------------------------------------------

    async def submit(self, payload: Dict[str, object]) -> Dict[str, object]:
        """Validate, admit, enqueue, and await one inference request.

        Returns the response dict (also carrying per-request server timings);
        invalid payloads, admission rejections, and engine failures come back
        as ``ok: false`` responses with a structured ``code`` rather than
        raising, so one bad request never takes down a connection handler.
        Admission order: validation, tenant quota, deadline, queue bound.
        """
        started = time.monotonic()
        try:
            pending = await self._prepare(payload, arrived_at=started)
        except (ReproError, ValueError, TypeError, KeyError) as exc:
            self.counters.observe(0.0, time.monotonic() - started, 0, ok=False)
            return self._error_response(payload, exc, code=CODE_INVALID_REQUEST)
        _SERVER_TENANT_REQUESTS.labels(tenant=pending.tenant).inc()
        # The stopping check precedes the not-started check: a submit racing
        # (or trailing) stop() gets a structured response, never an exception.
        if self._stopping:
            return self._shed(pending, CODE_SHUTTING_DOWN, "server shutting down")
        if self._dispatcher is None:
            raise InferenceError("service not started; call await service.start() first")
        now = time.monotonic()
        if self.tenant_rate is not None:
            bucket = self._buckets.get(pending.tenant)
            if bucket is None:
                bucket = self._buckets[pending.tenant] = _TokenBucket(
                    self.tenant_rate, self.tenant_burst, now
                )
            if not bucket.try_take(now):
                return self._shed(
                    pending,
                    CODE_QUOTA_EXCEEDED,
                    f"tenant {pending.tenant!r} exceeded its admitted rate "
                    f"({self.tenant_rate:g}/s, burst {self.tenant_burst:g})",
                )
        if pending.deadline_at is not None and now > pending.deadline_at:
            return self._shed(
                pending, CODE_DEADLINE_EXCEEDED, "deadline expired before admission"
            )
        if self._queued >= self.max_queue:
            return self._shed(
                pending,
                CODE_OVERLOADED,
                f"server queue is full ({self.max_queue} requests); retry later",
            )
        queue = self._queues.get(pending.tenant)
        if queue is None:
            queue = self._queues[pending.tenant] = deque()
        queue.append(pending)
        self._queued += 1
        _SERVER_QUEUE_DEPTH.set(self._queued)
        self._wake.set()
        return await pending.future

    def _shed(self, pending: _Pending, code: str, detail: str) -> Dict[str, object]:
        """Count and shape one admission-control rejection."""
        self.counters.observe_shed(code)
        return self._error_response(pending.payload, InferenceError(detail), code=code)

    @staticmethod
    def _validate_tenant(payload: Dict[str, object]) -> str:
        tenant = payload.get("tenant", DEFAULT_TENANT)
        if not isinstance(tenant, str) or not tenant or len(tenant) > 64:
            raise InferenceError("tenant must be a non-empty string of at most 64 characters")
        return tenant

    @staticmethod
    def _resolve_deadline(payload: Dict[str, object], arrived_at: float) -> Optional[float]:
        deadline_ms = payload.get("deadline_ms")
        if deadline_ms is None:
            return None
        if isinstance(deadline_ms, bool) or not isinstance(deadline_ms, (int, float)):
            raise InferenceError("deadline_ms must be a positive number of milliseconds")
        if deadline_ms <= 0:
            raise InferenceError("deadline_ms must be a positive number of milliseconds")
        return arrived_at + float(deadline_ms) / 1e3

    def _prepare_session_op(
        self, payload: Dict[str, object], arrived_at: float, op: str
    ) -> _Pending:
        """Validate one ``session.*`` payload into a queueable request.

        Deliberately cheap and synchronous: the expensive work (parsing,
        certification, the replay itself) happens at execution time in the
        worker thread, and skipping the executor hop here keeps same-session
        pushes admitted in arrival order.
        """
        unknown = sorted(set(payload) - SESSION_OPS[op])
        if unknown:
            raise InferenceError(f"unknown {op} keys {unknown}")
        tenant = self._validate_tenant(payload)
        deadline_at = self._resolve_deadline(payload, arrived_at)
        session_id = payload.get("session_id")
        if session_id is not None and not isinstance(session_id, str):
            raise InferenceError("session_id must be a string")
        if op != "session.open" and not session_id:
            raise InferenceError(f"{op} needs a session_id")
        if op == "session.push":
            values = payload.get("values")
            if not isinstance(values, list) or not values:
                raise InferenceError("session.push needs a non-empty values list")
        sites: List[int] = []
        if op == "session.query":
            sites = [int(s) for s in payload.get("sites", [0])]
        return _Pending(
            payload=payload,
            session=None,
            engine=op,
            request=None,
            sites=sites,
            future=asyncio.get_running_loop().create_future(),
            tenant=tenant,
            deadline_at=deadline_at,
            enqueued_at=arrived_at,
            session_op=op.split(".", 1)[1],
        )

    async def _prepare(self, payload: Dict[str, object], arrived_at: float) -> _Pending:
        """Resolve the payload into a certified session plus a typed request.

        ``arrived_at`` anchors both the deadline and the latency clock at
        payload arrival, so validation time counts against them.
        """
        op = payload.get("op", "infer")
        if op in SESSION_OPS:
            return self._prepare_session_op(payload, arrived_at, op)
        unknown = sorted(set(payload) - PAYLOAD_KEYS)
        if unknown:
            raise InferenceError(f"unknown request keys {unknown}")
        for key in ("model", "guide"):
            if not isinstance(payload.get(key), str):
                raise InferenceError(f"request needs {key!r} source text")
        tenant = self._validate_tenant(payload)
        deadline_at = self._resolve_deadline(payload, arrived_at)
        engine = payload.get("engine", "is")
        if engine not in available_engines():
            raise InferenceError(
                f"unknown engine {engine!r} (known: {', '.join(available_engines())})"
            )
        params = dict(payload.get("params") or {})
        bad = sorted(set(params) - REQUEST_FIELDS)
        if bad:
            raise InferenceError(f"unknown InferenceRequest fields {bad}")
        params.setdefault("workers", self.workers)
        # Parsing/typechecking is CPU work, but the session LRU makes repeat
        # requests free; run the cold path off the event loop.
        loop = asyncio.get_running_loop()
        session = await loop.run_in_executor(
            None,
            lambda: ProgramSession.from_sources(
                payload["model"],
                payload["guide"],
                model_entry=payload.get("model_entry"),
                guide_entry=payload.get("guide_entry"),
                latent_channel=payload.get("latent_channel", "latent"),
                obs_channel=payload.get("obs_channel", "obs"),
            ),
        )
        if not session.certified and not payload.get("force", False):
            raise InferenceError(
                f"model/guide pair is not certified: {session.certification_reason} "
                "(pass force: true to run anyway)"
            )
        request = InferenceRequest(**params)
        request.resolved_shards()  # validate the shard controls up front
        sites = [int(s) for s in payload.get("sites", [0])]
        return _Pending(
            payload=payload,
            session=session,
            engine=engine,
            request=request,
            sites=sites,
            future=asyncio.get_running_loop().create_future(),
            tenant=tenant,
            deadline_at=deadline_at,
            enqueued_at=arrived_at,
        )

    # -- dispatch ----------------------------------------------------------

    async def _dispatch_loop(self) -> None:
        """Collect bounded waves from the tenant queues and execute them.

        Each wave takes at most ``max_batch`` requests, round-robin across
        tenants, so a burst is served in bounded waves (bounded fused-wave
        memory) and no tenant's backlog can monopolise dispatch.  On
        cancellation (``stop()``), any wave already in hand resolves with a
        structured ``shutting_down`` response instead of being abandoned.
        """
        loop = asyncio.get_running_loop()
        while True:
            await self._wake.wait()
            if self.batch_window_s:
                await asyncio.sleep(self.batch_window_s)
            batch = self._collect_wave()
            if not self._queued:
                self._wake.clear()
            if not batch:
                continue
            self.counters.observe_wave(len(batch))
            now = time.monotonic()
            for pending in batch:
                pending.dispatched_at = now
            self._inflight.update(batch)
            try:
                for group in self._group(batch):
                    self.counters.observe_batch(len(group))
                    try:
                        await loop.run_in_executor(None, self._run_group, group)
                    except asyncio.CancelledError:
                        raise
                    except Exception as exc:  # noqa: BLE001 - dispatcher must survive
                        # _run_group already shields per-request work; anything
                        # escaping it is unexpected, but one poisoned group must
                        # never wedge the dispatcher (and with it the server).
                        for pending in group:
                            _resolve_future(
                                pending.future,
                                self._error_response(
                                    pending.payload, exc, code=CODE_ENGINE_ERROR
                                ),
                            )
            except asyncio.CancelledError:
                # stop() raced a dispatch: the executor may or may not get to
                # these futures, and _resolve_future is first-write-wins on
                # the loop thread — either way each caller sees one response.
                for pending in batch:
                    if not pending.future.done():
                        self.counters.observe_shed(CODE_SHUTTING_DOWN)
                        _resolve_future(
                            pending.future,
                            self._error_response(
                                pending.payload,
                                InferenceError("server shutting down"),
                                code=CODE_SHUTTING_DOWN,
                            ),
                        )
                raise
            finally:
                self._inflight.difference_update(batch)

    def _collect_wave(self) -> List[_Pending]:
        """Take up to ``max_batch`` queued requests, one per tenant per round.

        Round-robin across the per-tenant queues: as long as ``max_batch``
        is at least the number of active tenants, every tenant with queued
        work lands at least one request in every wave.  Requests whose
        deadline has already passed are shed here — before dispatch — and
        never execute.
        """
        now = time.monotonic()
        batch: List[_Pending] = []
        while self._queued and len(batch) < self.max_batch:
            took_any = False
            for tenant in list(self._queues.keys()):
                if len(batch) >= self.max_batch:
                    break
                queue = self._queues.get(tenant)
                if not queue:
                    self._queues.pop(tenant, None)
                    continue
                taken: Optional[_Pending] = None
                while queue:
                    candidate = queue.popleft()
                    self._queued -= 1
                    if candidate.deadline_at is not None and now > candidate.deadline_at:
                        self.counters.observe_shed(CODE_DEADLINE_EXCEEDED)
                        _resolve_future(
                            candidate.future,
                            self._error_response(
                                candidate.payload,
                                InferenceError("deadline expired while queued"),
                                code=CODE_DEADLINE_EXCEEDED,
                            ),
                        )
                        continue
                    taken = candidate
                    break
                if not queue:
                    self._queues.pop(tenant, None)
                if taken is not None:
                    batch.append(taken)
                    took_any = True
            if not took_any:
                break
        _SERVER_QUEUE_DEPTH.set(self._queued)
        return batch

    def _group(self, batch: List[_Pending]) -> List[List[_Pending]]:
        """Partition a batch into per-(session, engine, backend) groups.

        Session ops group by their session id instead: ops against one
        streaming session execute sequentially in arrival order (a push must
        never overtake the push before it), while ops against different
        sessions still ride the same wave.
        """
        groups: Dict[Tuple, List[_Pending]] = {}
        for pending in batch:
            if pending.session_op is not None:
                key = ("session", pending.payload.get("session_id") or id(pending))
            else:
                key = (id(pending.session), pending.engine, pending.request.backend)
            groups.setdefault(key, []).append(pending)
        for group in groups.values():
            for pending in group:
                pending.batch_size = len(group)
        return list(groups.values())

    def _run_group(self, group: List[_Pending]) -> None:
        """Execute one same-session group (worker thread).

        Importance-sampling groups with sharded members run as one fused
        pool wave; everything else runs member by member.  Either way each
        member's future resolves as soon as its own result exists.

        A member whose deadline passed between wave collection and this
        thread getting scheduled is shed here — the last gate before engine
        execution, so an expired request is never executed.
        """
        live: List[_Pending] = []
        now = time.monotonic()
        for pending in group:
            if pending.deadline_at is not None and now > pending.deadline_at:
                self.counters.observe_shed(CODE_DEADLINE_EXCEEDED)
                response = self._error_response(
                    pending.payload,
                    InferenceError("deadline expired before execution"),
                    code=CODE_DEADLINE_EXCEEDED,
                )
                loop = pending.future.get_loop()
                loop.call_soon_threadsafe(_resolve_future, pending.future, response)
            else:
                live.append(pending)
        group = live
        if not group:
            return
        if group[0].session_op is not None:
            self._run_session_group(group)
            return
        wave_outcomes: Dict[int, object] = {}
        wave_s = 0.0
        if len(group) > 1 and group[0].engine == "is":
            wave_started = time.monotonic()
            try:
                with span("server.coalesce", requests=len(group)):
                    wave_outcomes = self._run_is_wave(group)
            except Exception:  # noqa: BLE001 - wave is an optimisation only
                wave_outcomes = {}  # fall through to member-by-member execution
            wave_s = time.monotonic() - wave_started
        wave_size = max(len(wave_outcomes), 1)
        for i, pending in enumerate(group):
            started = time.monotonic()
            busy_s: Optional[float] = None
            result: object = None
            error: Optional[Exception] = None
            if i in wave_outcomes:
                outcome = wave_outcomes[i]
                if isinstance(outcome, Exception):
                    error = outcome
                else:
                    result = outcome
                # Every wave member perceives the whole wave's wall time but
                # accounts for only its share of engine busy time.
                run_s = wave_s
                busy_s = wave_s / wave_size
            else:
                try:
                    result = run_engine(pending.engine, pending.session, pending.request)
                except Exception as exc:  # noqa: BLE001 - reported per request
                    error = exc
                run_s = time.monotonic() - started
            queue_wait = pending.dispatched_at - pending.enqueued_at
            ok = error is None
            try:
                particles = int(pending.request.num_particles)
            except (TypeError, ValueError):
                particles = 0
            if ok:
                try:
                    response = self._result_response(pending, result, queue_wait, run_s)
                except Exception as exc:  # noqa: BLE001 - reported per request
                    ok = False
                    response = self._error_response(
                        pending.payload, exc, code=CODE_ENGINE_ERROR
                    )
            else:
                response = self._error_response(pending.payload, error, code=CODE_ENGINE_ERROR)
            # Latency is measured arrival-to-response-built — it includes
            # validation and serialisation, not just queue_wait + run_s.
            latency_s = time.monotonic() - pending.enqueued_at
            if ok:
                response["server"]["latency_s"] = latency_s
            self.counters.observe(
                queue_wait, run_s, particles, ok, busy_s=busy_s, latency_s=latency_s
            )
            loop = pending.future.get_loop()
            loop.call_soon_threadsafe(_resolve_future, pending.future, response)

    def _run_session_group(self, group: List[_Pending]) -> None:
        """Execute one same-session group of ``session.*`` ops (worker thread).

        Members run strictly in arrival order — the grouping key guarantees
        every op against one session id lands in the same group, so a push
        can never overtake the push before it.  Structured failures
        (``session_not_found``/``session_expired``/``session_limit``/
        ``invalid_request``) resolve the member's future like any other
        error response; anything unexpected maps to ``engine_error``.
        """
        for pending in group:
            started = time.monotonic()
            ok = True
            try:
                body = self._execute_session_op(pending)
                response: Dict[str, object] = {
                    "id": pending.payload.get("id"),
                    "ok": True,
                    "op": pending.payload.get("op"),
                }
                response.update(_json_safe(body))
                response["server"] = {
                    "queue_wait_s": pending.dispatched_at - pending.enqueued_at,
                    "run_s": time.monotonic() - started,
                    "batch_size": pending.batch_size,
                }
            except StreamingError as exc:
                ok = False
                response = self._error_response(pending.payload, exc, code=exc.code)
            except (ReproError, ValueError, TypeError, KeyError) as exc:
                ok = False
                response = self._error_response(pending.payload, exc, code=CODE_ENGINE_ERROR)
            run_s = time.monotonic() - started
            latency_s = time.monotonic() - pending.enqueued_at
            if ok:
                response["server"]["latency_s"] = latency_s
            self.counters.observe(
                pending.dispatched_at - pending.enqueued_at,
                run_s,
                0,
                ok,
                latency_s=latency_s,
            )
            loop = pending.future.get_loop()
            loop.call_soon_threadsafe(_resolve_future, pending.future, response)

    def _execute_session_op(self, pending: _Pending) -> Dict[str, object]:
        """Route one validated session op to the session table."""
        payload = pending.payload
        op = pending.session_op
        tenant = pending.tenant
        if op == "open":
            return self.sessions.open(
                tenant, payload, session_id=payload.get("session_id")
            )
        session_id = str(payload["session_id"])
        if op == "push":
            return self.sessions.push(tenant, session_id, payload["values"])
        if op == "query":
            return self.sessions.query(tenant, session_id, pending.sites)
        if op == "close":
            return self.sessions.close(tenant, session_id)
        raise InferenceError(f"unknown session op {op!r}")

    def _run_is_wave(self, group: List[_Pending]) -> Dict[int, object]:
        """Run a group of same-session ``is`` requests as one pool wave.

        Every member's shard tasks are prepared exactly as a solo run would
        prepare them (same seeds, same plan), concatenated into a single
        ``execute_tasks`` call, and merged back per member — so coalescing
        is invisible in the results, including the all-weights-zero guard a
        solo ``vectorized_importance`` run applies (a failed member maps to
        its :class:`InferenceError`).  Members whose plan has a single
        shard are left for the sequential path.
        """
        import numpy as np

        from repro.engine.api import ImportanceEngineResult
        from repro.engine.backend import make_particle_runner
        from repro.engine.shard import ShardedParticleRunner, execute_tasks
        from repro.engine.vectorize import VectorizedISResult
        from repro.utils.rng import ensure_rng

        waves = []
        for i, pending in enumerate(group):
            session, request = pending.session, pending.request
            runner = make_particle_runner(
                session.model_program,
                session.guide_program,
                session.model_entry,
                session.guide_entry,
                obs_trace=request.resolved_obs_trace(),
                model_args=request.model_args,
                guide_args=request.guide_args,
                latent_channel=session.latent_channel,
                obs_channel=session.obs_channel,
                backend=request.resolved_backend(),
                session=session,
                workers=request.workers,
                shards=request.resolved_shards(),
                trim_site_scores=True,  # mirror the solo IS path
            )
            if not isinstance(runner, ShardedParticleRunner):
                continue
            wave = runner.prepare(request.num_particles, ensure_rng(request.seed))
            waves.append((i, runner, wave))
        if not waves:
            return {}
        all_tasks = [task for _, _, wave in waves for task in wave.tasks]
        shard_results = execute_tasks(all_tasks, self.workers)
        out: Dict[int, object] = {}
        cursor = 0
        for i, runner, wave in waves:
            chunk = shard_results[cursor : cursor + len(wave.tasks)]
            cursor += len(wave.tasks)
            run = wave.merge(chunk, runner.latent_channel, runner.obs_channel)
            result = VectorizedISResult(run)
            if not np.any(np.isfinite(result.log_weights)):
                # Same guard (and message) as vectorized_importance's solo path.
                out[i] = InferenceError(
                    "all importance weights are zero: the guide's proposals never "
                    "land in the model's support (the model/guide pair is not "
                    "absolutely continuous)"
                )
            else:
                out[i] = ImportanceEngineResult(result)
        return out

    # -- response shaping --------------------------------------------------

    def _result_response(
        self, pending: _Pending, result: EngineResult, queue_wait_s: float, run_s: float
    ) -> Dict[str, object]:
        """Serialise one engine result into the wire response."""
        means: Dict[str, float] = {}
        for site in pending.sites:
            try:
                means[str(site)] = float(result.posterior_mean(site))
            except ReproError:
                means[str(site)] = None
        log_evidence = result.log_evidence()
        ess = result.effective_sample_size()
        return {
            "id": pending.payload.get("id"),
            "ok": True,
            "engine": pending.engine,
            "posterior_means": means,
            "log_evidence": None if log_evidence is None else float(log_evidence),
            "effective_sample_size": None if ess is None else float(ess),
            "diagnostics": _json_safe(result.diagnostics_with_metrics()),
            "server": {
                "queue_wait_s": queue_wait_s,
                "run_s": run_s,
                "batch_size": pending.batch_size,
            },
        }

    @staticmethod
    def _error_response(
        payload: Dict[str, object], exc: Exception, code: str = CODE_ENGINE_ERROR
    ) -> Dict[str, object]:
        """The ``ok: false`` wire response for one failed request."""
        return {"id": payload.get("id") if isinstance(payload, dict) else None,
                "ok": False, "error": str(exc), "code": code}


def _resolve_future(future: "asyncio.Future", response: Dict[str, object]) -> None:
    """Set a future's result unless the caller already went away."""
    if not future.done():
        future.set_result(response)


def _json_safe(value):
    """Coerce numpy scalars/arrays so the response serialises as JSON."""
    import numpy as np

    if isinstance(value, dict):
        return {str(k): _json_safe(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_json_safe(v) for v in value]
    if isinstance(value, (np.floating, np.integer)):
        return value.item()
    if isinstance(value, np.bool_):
        return bool(value)
    if isinstance(value, np.ndarray):
        return value.tolist()
    return value


# ---------------------------------------------------------------------------
# The TCP front-end (newline-delimited JSON)
# ---------------------------------------------------------------------------


async def _handle_connection(
    service: InferenceService, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
) -> None:
    """Serve one client connection: a JSON object per line, answers by ``id``."""
    write_lock = asyncio.Lock()
    tasks: List[asyncio.Task] = []

    async def respond(response: Dict[str, object]) -> None:
        async with write_lock:
            writer.write(json.dumps(response).encode("utf-8") + b"\n")
            await writer.drain()

    async def handle_line(line: bytes) -> None:
        try:
            payload = json.loads(line)
        except json.JSONDecodeError as exc:
            await respond({"id": None, "ok": False, "error": f"bad JSON: {exc}",
                           "code": CODE_INVALID_REQUEST})
            return
        op = payload.get("op", "infer") if isinstance(payload, dict) else "infer"
        if not isinstance(payload, dict):
            await respond({"id": None, "ok": False, "error": "request must be a JSON object",
                           "code": CODE_INVALID_REQUEST})
        elif op == "stats":
            from repro.engine.shard import pool_worker_pids

            await respond({"id": payload.get("id"), "ok": True,
                           "counters": service.counters.snapshot(),
                           "sessions": service.sessions.stats(),
                           "pool": {"worker_pids": pool_worker_pids()}})
        elif op == "metrics":
            await respond({"id": payload.get("id"), "ok": True,
                           "metrics": REGISTRY.snapshot()})
        elif op == "infer" or op in SESSION_OPS:
            await respond(await service.submit(payload))
        else:
            known = ", ".join(["infer", "metrics", "stats"] + sorted(SESSION_OPS))
            await respond({"id": payload.get("id"), "ok": False,
                           "error": f"unknown op {op!r} (known: {known})",
                           "code": CODE_INVALID_REQUEST})

    cancelled = False
    try:
        while True:
            line = await reader.readline()
            if not line:
                break
            if line.startswith(b"GET ") and not tasks:
                # A Prometheus scraper (or curl) speaking HTTP on the JSONL
                # port: answer the one request and close, as HTTP/1.0 does.
                await _serve_http_scrape(reader, writer, line)
                break
            if line.strip():
                # Handle each line concurrently so requests on one connection
                # can coalesce into the same dispatch batch.
                tasks.append(asyncio.create_task(handle_line(line)))
    except asyncio.CancelledError:
        cancelled = True
        raise
    finally:
        if cancelled:
            for task in tasks:
                if not task.done():
                    task.cancel()
        elif tasks:
            # EOF on the read side is how JSONL clients say "no more
            # requests" — answers for everything already submitted must
            # still go out before the connection closes.
            await asyncio.gather(*tasks, return_exceptions=True)
        writer.close()
        try:
            await asyncio.shield(writer.wait_closed())
        except (ConnectionError, OSError, asyncio.CancelledError):
            pass


async def _serve_http_scrape(
    reader: asyncio.StreamReader, writer: asyncio.StreamWriter, request_line: bytes
) -> None:
    """Answer one ``GET`` request on the JSONL port (the ``/metrics`` scrape).

    Minimal HTTP/1.0 semantics: headers are drained and ignored, the
    response carries ``Content-Length``, and the connection closes after one
    exchange — exactly what a Prometheus scrape (or ``curl``) needs, without
    pulling an HTTP framework into the server.
    """
    while True:  # drain request headers up to the blank line
        header = await reader.readline()
        if not header or header in (b"\r\n", b"\n"):
            break
    parts = request_line.decode("latin-1").split()
    path = parts[1] if len(parts) >= 2 else ""
    if path.split("?", 1)[0] == "/metrics":
        body = REGISTRY.render_prometheus().encode("utf-8")
        status = "200 OK"
        content_type = "text/plain; version=0.0.4; charset=utf-8"
    else:
        body = b"not found; scrape /metrics\n"
        status = "404 Not Found"
        content_type = "text/plain; charset=utf-8"
    head = (
        f"HTTP/1.0 {status}\r\n"
        f"Content-Type: {content_type}\r\n"
        f"Content-Length: {len(body)}\r\n"
        "Connection: close\r\n\r\n"
    )
    writer.write(head.encode("latin-1") + body)
    await writer.drain()


async def serve_tcp(service: InferenceService, host: str, port: int) -> "asyncio.AbstractServer":
    """Start the JSONL TCP front-end for an already-started service."""
    return await asyncio.start_server(
        lambda r, w: _handle_connection(service, r, w), host, port
    )


async def run_server(
    host: str = "127.0.0.1",
    port: int = 7341,
    workers: int = 1,
    batch_window_s: float = 0.002,
    max_queue: int = 256,
    max_batch: int = 32,
    tenant_rate: Optional[float] = None,
    tenant_burst: Optional[float] = None,
    session_ttl_s: float = 600.0,
    max_sessions: int = 256,
    sessions_per_tenant: int = 32,
    checkpoint_dir: Optional[str] = None,
) -> None:
    """Run the batch-inference server until cancelled (CLI entry point)."""
    service = InferenceService(
        workers=workers,
        batch_window_s=batch_window_s,
        max_queue=max_queue,
        max_batch=max_batch,
        tenant_rate=tenant_rate,
        tenant_burst=tenant_burst,
        session_ttl_s=session_ttl_s,
        max_sessions=max_sessions,
        sessions_per_tenant=sessions_per_tenant,
        checkpoint_dir=checkpoint_dir,
    )
    await service.start()
    server = await serve_tcp(service, host, port)
    bound = ", ".join(str(sock.getsockname()) for sock in server.sockets)
    print(f"repro inference server listening on {bound} "
          f"({workers} worker(s), batch window {batch_window_s * 1e3:.1f}ms, "
          f"max queue {service.max_queue}, max batch {service.max_batch}, "
          f"tenant rate {service.tenant_rate if service.tenant_rate is not None else 'off'}, "
          f"sessions {max_sessions} cap / {session_ttl_s:g}s TTL"
          f"{', checkpoints in ' + checkpoint_dir if checkpoint_dir else ''})")
    try:
        async with server:
            await server.serve_forever()
    finally:
        await service.stop()
