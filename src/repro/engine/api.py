"""The inference-engine registry: one request interface, many runtimes.

An :class:`InferenceEngine` takes a prepared
:class:`~repro.engine.session.ProgramSession` and an
:class:`InferenceRequest` and returns an :class:`EngineResult` — a uniform
facade over posterior means, evidence estimates, and effective sample sizes
regardless of which algorithm produced them.  Engines self-register under a
name so the CLI (and any serving layer built on sessions) can select them
with a string:

======================  =====================================================
``is``                  importance sampling, all particles in lockstep
``is-sequential``       the original one-particle-at-a-time loop
``smc``                 Sequential Monte Carlo (systematic resampling +
                        ESS-triggered rejuvenation)
``mh``                  parallel Metropolis–Hastings chains (independence
                        proposal from the guide) with split-chain pooling
``svi``                 batched score-function SVI on the lockstep runtime
                        (posterior queries via the fitted guide)
``svi-fd``              sequential finite-difference SVI (reference path)
======================  =====================================================
"""

from __future__ import annotations

import abc
import time
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.semantics import traces as tr
from repro.errors import InferenceError
from repro.obs import REGISTRY, span
from repro.utils.rng import SeedLike, ensure_rng, fork_rng

_ENGINE_RUN_SECONDS = REGISTRY.histogram(
    "repro_engine_run_seconds",
    "End-to-end engine execution time per request, by engine and requested "
    "backend.",
    labels=("engine", "backend"),
)

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.engine.session import ProgramSession


@dataclass
class InferenceRequest:
    """One inference request against a prepared model/guide session."""

    num_particles: int = 1000
    #: Worker processes for the sharded execution layer
    #: (:mod:`repro.engine.shard`).  ``1`` (the default) runs in-process;
    #: ``N > 1`` distributes the request's shards over a persistent
    #: process pool of ``N`` workers.  Results depend only on the shard
    #: plan, never on the pool size — but note the plan *defaults* to one
    #: shard per worker, so pin ``shards`` explicitly when you vary
    #: ``workers`` and need identical numbers.
    workers: int = 1
    #: Number of particle shards, each driven by an independently derived
    #: RNG stream.  ``None`` defaults to ``workers`` (one shard per
    #: worker).  Results are a pure function of ``(seed, num_particles,
    #: shards)``: pin ``shards`` explicitly to make them independent of the
    #: worker count, and keep ``shards=1`` for bit-identical parity with
    #: the single-process path.  Engines that never touch the vectorized
    #: runtime (``is-sequential``, ``mh``, ``svi-fd``) ignore both fields.
    shards: Optional[int] = None
    #: Particle-runtime backend: ``"interp"`` runs the lockstep coroutine
    #: interpreter; ``"compiled"`` runs the fused batched kernel emitted by
    #: :func:`repro.compiler.codegen.compile_fused_pair` (bitwise-identical
    #: results, no per-site op dispatch), falling back to the interpreter
    #: for pairs outside the compiled fragment (e.g. recursion) — the
    #: decision is recorded on the session and surfaced in diagnostics.
    #: Engines that never touch the vectorized runtime (``is-sequential``,
    #: ``mh``, ``svi-fd``) ignore this field.
    backend: str = "interp"
    #: Compiled-backend JIT tier: ``"none"`` runs the per-region fused
    #: kernel, ``"mega"`` the cross-group megakernel (one emitted function
    #: scheduling the whole path tree, with the SVI rescoring pass compiled
    #: too).  Both tiers cover the same fragment and are bitwise-identical
    #: to ``interp``; ignored when ``backend="interp"``.
    jit: str = "none"
    #: Observed values, wrapped as provider-sent messages in order; mutually
    #: exclusive with ``obs_trace`` (which takes precedence when given).
    obs_values: Optional[Sequence[object]] = None
    obs_trace: Optional[Sequence[tr.Message]] = None
    seed: SeedLike = None
    model_args: Tuple[object, ...] = ()
    guide_args: Tuple[object, ...] = ()
    #: SMC-specific knobs.
    ess_threshold: float = 0.5
    rejuvenate: bool = True
    #: MH-specific knobs.
    num_chains: int = 4
    burn_in: int = 100
    #: SVI-specific knobs.  ``guide_params`` maps the guide entry procedure's
    #: parameters to constrained initial values (optimised when given;
    #: without it the guide runs fixed at ``guide_args``);
    #: ``param_constraints`` selects a transform per parameter
    #: (``real``/``positive``/``unit``/``simplex``, default ``real``).
    num_steps: int = 30
    optimizer: str = "adam"
    learning_rate: float = 0.05
    guide_params: Optional[Dict[str, object]] = None
    param_constraints: Optional[Dict[str, str]] = None
    rao_blackwellize: bool = False
    score_epsilon: float = 1e-4
    #: Particle count for the final posterior pass through the fitted guide
    #: (defaults to ``num_particles``).
    final_particles: Optional[int] = None

    def resolved_backend(self) -> str:
        """The validated particle-runtime backend name."""
        from repro.engine.backend import validate_backend

        return validate_backend(self.backend)

    def resolved_jit(self) -> str:
        """The validated compiled-backend JIT tier name."""
        from repro.engine.backend import validate_jit

        return validate_jit(self.jit)

    def resolved_shards(self) -> int:
        """The validated shard count (``shards``, defaulting to ``workers``)."""
        from repro.engine.shard import resolve_shards

        return resolve_shards(self.workers, self.shards)

    def runner_options(self) -> Dict[str, object]:
        """Keyword arguments selecting this request's execution strategy.

        Bundles the backend, JIT-tier, and shard controls for
        :func:`repro.engine.backend.make_particle_runner`, so engines thread
        one dict instead of tracking each knob separately.
        """
        return {
            "backend": self.resolved_backend(),
            "jit": self.resolved_jit(),
            "workers": self.workers,
            "shards": self.resolved_shards(),
        }

    def resolved_obs_trace(self) -> Optional[tr.Trace]:
        """The observation trace, built from ``obs_trace`` or ``obs_values``."""
        if self.obs_trace is not None:
            return tuple(self.obs_trace)
        if self.obs_values is not None:
            return tuple(tr.ValP(v) for v in self.obs_values)
        return None


class EngineResult(abc.ABC):
    """Uniform summary facade over one engine's output.

    ``raw`` is the engine-specific result object for callers that need the
    full detail (per-particle weights, chains, traces, ...).
    """

    def __init__(self, raw: object):
        self.raw = raw
        #: Per-run observability snapshot (engine name, wall time, and the
        #: metric deltas attributed to the run), filled in by
        #: :func:`run_engine`.  ``None`` when the engine was invoked directly.
        self.run_metrics: Optional[Dict[str, object]] = None

    @abc.abstractmethod
    def posterior_mean(self, site_index: int) -> float:
        """Posterior mean of the ``site_index``-th latent value."""

    def log_evidence(self) -> Optional[float]:
        """Log marginal-likelihood estimate (``None`` if the engine has none)."""
        return None

    def effective_sample_size(self) -> Optional[float]:
        """Kish effective sample size (``None`` if the engine has none)."""
        return None

    def diagnostics(self) -> Dict[str, object]:
        """Engine-specific diagnostics for reporting layers (CLI, server)."""
        return {}

    def diagnostics_with_metrics(self) -> Dict[str, object]:
        """Engine diagnostics plus the per-run metric snapshot (when present).

        The snapshot is attributed by diffing the process-wide registry around
        the run, so under concurrent requests it may include activity from
        overlapping runs — treat it as approximate in multi-tenant settings.
        """
        out = dict(self.diagnostics())
        if self.run_metrics is not None:
            out["run_metrics"] = self.run_metrics
        return out


class InferenceEngine(abc.ABC):
    """An inference algorithm exposed through the engine registry."""

    name: str = "engine"
    description: str = ""

    @abc.abstractmethod
    def run(self, session: "ProgramSession", request: InferenceRequest) -> EngineResult:
        """Execute the request against the session's model/guide pair."""


_REGISTRY: Dict[str, InferenceEngine] = {}


def register_engine(engine: InferenceEngine) -> InferenceEngine:
    """Register an engine instance under its ``name`` (latest wins)."""
    _REGISTRY[engine.name] = engine
    return engine


def get_engine(name: str) -> InferenceEngine:
    """Look up a registered engine by name (raises on unknown names)."""
    try:
        return _REGISTRY[name]
    except KeyError:
        known = ", ".join(sorted(_REGISTRY))
        raise InferenceError(f"unknown inference engine {name!r} (known: {known})")


def available_engines() -> List[str]:
    """The registered engine names, sorted."""
    return sorted(_REGISTRY)


def run_engine(
    name: str, session: "ProgramSession", request: InferenceRequest
) -> EngineResult:
    """Run one request through a registered engine, with observability.

    The canonical execution seam: wraps the engine call in an ``engine.run``
    trace span, feeds the engine-run latency histogram, and stamps the result
    with a per-run metric snapshot (``result.run_metrics``) attributing the
    registry activity — kernel compiles, cache hits, shard traffic — that
    occurred during the run.  ``session.infer`` and the batch server both
    route through here.
    """
    engine = get_engine(name)
    backend = str(request.backend)
    jit = str(getattr(request, "jit", "none"))
    mark = REGISTRY.mark()
    started = time.perf_counter()
    with span("engine.run", engine=name, backend=backend, jit=jit):
        result = engine.run(session, request)
    wall_s = time.perf_counter() - started
    _ENGINE_RUN_SECONDS.labels(engine=name, backend=backend).observe(wall_s)
    result.run_metrics = {
        "engine": name,
        "backend": backend,
        "jit": jit,
        "wall_s": wall_s,
        "metrics": REGISTRY.delta(mark),
    }
    return result


# ---------------------------------------------------------------------------
# Importance-sampling engines (vectorized and sequential)
# ---------------------------------------------------------------------------


class ImportanceEngineResult(EngineResult):
    """Adapter over both importance-sampling result flavours."""

    def posterior_mean(self, site_index: int) -> float:
        """Self-normalised importance estimate of the site's posterior mean."""
        return self.raw.posterior_expectation_of_site(site_index)

    def log_evidence(self) -> Optional[float]:
        """Log of the mean importance weight."""
        return float(self.raw.log_evidence())

    def effective_sample_size(self) -> Optional[float]:
        """Kish effective sample size of the importance weights."""
        return float(self.raw.effective_sample_size())

    def diagnostics(self) -> Dict[str, object]:
        """Sample count plus, for vectorized runs, group/backend detail."""
        out: Dict[str, object] = {"num_samples": self.raw.num_samples}
        run = getattr(self.raw, "run", None)
        if run is not None:
            out["num_groups"] = run.num_groups
            out["vectorized"] = run.vectorized
            out["backend"] = run.backend
            out["jit"] = getattr(run, "jit", "none")
            reason = getattr(run, "fallback_reason", None)
            if reason is not None:
                out["fallback_reason"] = reason
        return out


class VectorizedImportanceEngine(InferenceEngine):
    """Lockstep importance sampling (optionally sharded across workers)."""

    name = "is"
    description = "importance sampling, all particles executed in lockstep"

    def run(self, session: "ProgramSession", request: InferenceRequest) -> EngineResult:
        """Draw one weighted particle population through the request's runner."""
        from repro.engine.vectorize import vectorized_importance

        result = vectorized_importance(
            session.model_program,
            session.guide_program,
            session.model_entry,
            session.guide_entry,
            obs_trace=request.resolved_obs_trace(),
            num_particles=request.num_particles,
            rng=ensure_rng(request.seed),
            model_args=request.model_args,
            guide_args=request.guide_args,
            latent_channel=session.latent_channel,
            obs_channel=session.obs_channel,
            session=session,
            **request.runner_options(),
        )
        return ImportanceEngineResult(result)


class SequentialImportanceEngine(InferenceEngine):
    """The original one-particle-at-a-time importance-sampling loop."""

    name = "is-sequential"
    description = "importance sampling, one particle at a time (reference path)"

    def run(self, session: "ProgramSession", request: InferenceRequest) -> EngineResult:
        """Run the scalar reference loop (ignores backend/shard controls)."""
        from repro.inference.importance import importance_sampling

        result = importance_sampling(
            session.model_program,
            session.guide_program,
            session.model_entry,
            session.guide_entry,
            obs_trace=request.resolved_obs_trace(),
            num_samples=request.num_particles,
            rng=ensure_rng(request.seed),
            model_args=request.model_args,
            guide_args=request.guide_args,
            latent_channel=session.latent_channel,
            obs_channel=session.obs_channel,
        )
        return ImportanceEngineResult(result)


# ---------------------------------------------------------------------------
# Sequential Monte Carlo
# ---------------------------------------------------------------------------


class SMCEngineResult(EngineResult):
    """Adapter over :class:`~repro.engine.smc.SMCResult`."""

    def posterior_mean(self, site_index: int) -> float:
        """Weighted mean of the site over the final particle population."""
        return self.raw.posterior_mean(site_index)

    def log_evidence(self) -> Optional[float]:
        """The annealed evidence estimate accumulated across tempering steps."""
        return float(self.raw.log_evidence())

    def effective_sample_size(self) -> Optional[float]:
        """ESS of the final population's weights."""
        return float(self.raw.effective_sample_size())

    def diagnostics(self) -> Dict[str, object]:
        """ESS trajectory, resampling points, and rejuvenation acceptance."""
        out = {
            "ess_history": list(self.raw.ess_history),
            "resample_steps": list(self.raw.resample_steps),
            "rejuvenation_rates": list(self.raw.rejuvenation_rates),
        }
        if self.raw.runs:
            out["backend"] = self.raw.runs[0].backend
            out["jit"] = getattr(self.raw.runs[0], "jit", "none")
            reasons = [
                getattr(r, "fallback_reason", None)
                for r in self.raw.runs
                if getattr(r, "fallback_reason", None) is not None
            ]
            if reasons:
                out["fallback_reason"] = reasons[0]
        return out


class SMCEngine(InferenceEngine):
    """Sequential Monte Carlo on the vectorized (optionally sharded) runtime."""

    name = "smc"
    description = "Sequential Monte Carlo: systematic resampling + rejuvenation"

    def run(self, session: "ProgramSession", request: InferenceRequest) -> EngineResult:
        """Anneal the request's particle population over its observations."""
        from repro.engine.smc import smc

        result = smc(
            session.model_program,
            session.guide_program,
            session.model_entry,
            session.guide_entry,
            obs_trace=request.resolved_obs_trace(),
            num_particles=request.num_particles,
            rng=ensure_rng(request.seed),
            ess_threshold=request.ess_threshold,
            rejuvenate=request.rejuvenate,
            model_args=request.model_args,
            guide_args=request.guide_args,
            latent_channel=session.latent_channel,
            obs_channel=session.obs_channel,
            session=session,
            **request.runner_options(),
        )
        return SMCEngineResult(result)


# ---------------------------------------------------------------------------
# Parallel Metropolis–Hastings chains
# ---------------------------------------------------------------------------


@dataclass
class ParallelMHSummary:
    """Pooled summary over independent MH chains."""

    chains: List[object] = field(default_factory=list)

    @property
    def num_chains(self) -> int:
        """How many chains contributed to the pool."""
        return len(self.chains)

    def acceptance_rates(self) -> List[float]:
        """Per-chain MH acceptance rates, in chain order."""
        return [chain.acceptance_rate for chain in self.chains]

    def pooled_site_values(self, site_index: int) -> np.ndarray:
        """All chains' values at one latent site, concatenated."""
        values: List[float] = []
        for chain in self.chains:
            values.extend(chain.site_values(site_index))
        if not values:
            raise InferenceError(f"no chain state has a latent value at index {site_index}")
        return np.asarray(values)

    def gelman_rubin(self, site_index: int) -> float:
        """Split-free R̂ across chains (between/within variance ratio)."""
        per_chain = [np.asarray(chain.site_values(site_index)) for chain in self.chains]
        per_chain = [c for c in per_chain if len(c) >= 2]
        if len(per_chain) < 2:
            return float("nan")
        length = min(len(c) for c in per_chain)
        matrix = np.stack([c[:length] for c in per_chain])
        within = float(np.mean(np.var(matrix, axis=1, ddof=1)))
        between = float(length * np.var(np.mean(matrix, axis=1), ddof=1))
        if within == 0.0:
            return float("nan")
        variance = (length - 1) / length * within + between / length
        return float(np.sqrt(variance / within))


class ParallelMHEngineResult(EngineResult):
    """Adapter over :class:`ParallelMHSummary` (pooled chains)."""

    def posterior_mean(self, site_index: int) -> float:
        """Unweighted mean over the pooled post-burn-in chain states."""
        return float(np.mean(self.raw.pooled_site_values(site_index)))

    def diagnostics(self) -> Dict[str, object]:
        """Chain count, acceptance rates, and the site-0 R-hat statistic."""
        return {
            "num_chains": self.raw.num_chains,
            "acceptance_rates": self.raw.acceptance_rates(),
            "gelman_rubin_site0": self.raw.gelman_rubin(0),
        }


class ParallelMHEngine(InferenceEngine):
    """Independent Metropolis–Hastings chains pooled into one estimate."""

    name = "mh"
    description = "independent Metropolis–Hastings chains with pooled estimates"

    def run(self, session: "ProgramSession", request: InferenceRequest) -> EngineResult:
        """Run ``num_chains`` sequential chains and pool their states."""
        from repro.inference.mcmc import independence_proposal, metropolis_hastings

        if request.num_chains <= 0:
            raise InferenceError("num_chains must be positive")
        samples_per_chain = max(1, request.num_particles // request.num_chains)
        rngs = fork_rng(ensure_rng(request.seed), request.num_chains)
        proposal_args = independence_proposal(request.guide_args)
        summary = ParallelMHSummary()
        for chain_rng in rngs:
            summary.chains.append(
                metropolis_hastings(
                    session.model_program,
                    session.guide_program,
                    session.model_entry,
                    session.guide_entry,
                    obs_trace=request.resolved_obs_trace(),
                    num_samples=samples_per_chain,
                    rng=chain_rng,
                    proposal_args=proposal_args,
                    model_args=request.model_args,
                    burn_in=request.burn_in,
                    latent_channel=session.latent_channel,
                    obs_channel=session.obs_channel,
                )
            )
        return ParallelMHEngineResult(summary)


register_engine(VectorizedImportanceEngine())
register_engine(SequentialImportanceEngine())
register_engine(SMCEngine())
register_engine(ParallelMHEngine())
