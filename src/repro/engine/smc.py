"""Sequential Monte Carlo over the vectorized particle runtime.

The sampler anneals from the guide's proposal distribution to the posterior
by *data tempering*: the intermediate target after step ``t`` is

    γ_t(σ) ∝ p_prior(σ) · Π_{j ≤ t} p(obs_j | σ)

over full latent traces σ drawn from the guide.  The vectorized runtime
(:class:`~repro.engine.vectorize.ParticleVectorizer`) supplies everything
columnar: the guide density ``q(σ)``, the model's prior density, and the
per-observation likelihood terms, so each SMC step is pure array work:

1. re-weight by the ``t``-th observation's log-likelihood column;
2. when the effective sample size drops below ``ess_threshold · n``,
   resample particle *rows* systematically and reset the weights;
3. after a resampling, optionally rejuvenate every particle with an
   independence Metropolis–Hastings move targeting γ_t, proposing a fresh
   batch from the guide (again one vectorized run).

Because rejuvenation proposals are guide draws, Thm. 5.2's absolute
continuity guarantee is exactly what makes the acceptance ratio well-defined
— the same soundness condition the paper's type system certifies.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

from repro.xp import np

from repro.core import ast
from repro.core.semantics import traces as tr
from repro.engine.vectorize import VectorRunResult
from repro.errors import InferenceError
from repro.obs import DEFAULT_COUNT_BUCKETS, REGISTRY, span

_SMC_PHASE_SECONDS = REGISTRY.histogram(
    "repro_smc_phase_seconds",
    "Wall time of one SMC phase: a population sample pass, a systematic "
    "resampling, or a rejuvenation sweep.",
    labels=("phase",),
)
_SMC_ESS = REGISTRY.histogram(
    "repro_smc_ess",
    "Effective sample size after each tempering step's re-weighting.",
    buckets=DEFAULT_COUNT_BUCKETS,
)
_SMC_RESAMPLES = REGISTRY.counter(
    "repro_smc_resamples_total",
    "Tempering steps whose ESS fell below the threshold and triggered a "
    "systematic resampling.",
)
from repro.utils.numerics import (
    effective_sample_size,
    log_mean_exp,
    log_sum_exp,
    normalize_log_weights,
    weighted_mean,
)
from repro.utils.rng import ensure_rng


def systematic_resample(weights: np.ndarray, rng: np.random.Generator) -> np.ndarray:
    """Systematic resampling: ``n`` ancestor indices from normalised weights."""
    n = len(weights)
    positions = (rng.random() + np.arange(n)) / n
    cumulative = np.cumsum(weights)
    cumulative[-1] = 1.0  # guard against floating-point shortfall
    return np.searchsorted(cumulative, positions)


def _pad_scores(matrix: np.ndarray, num_steps: int) -> np.ndarray:
    """Zero-pad an obs-score matrix to the tempering schedule's width.

    A zero column means "this particle's control path emits no observation at
    that step" (likelihood factor 1), matching the padding the vectorized run
    already applies across its own control-flow groups.
    """
    if matrix.shape[1] == num_steps:
        return matrix
    padded = np.zeros((matrix.shape[0], num_steps))
    padded[:, : matrix.shape[1]] = matrix
    return padded


@dataclass
class SMCResult:
    """Final particle population of a Sequential Monte Carlo run."""

    num_particles: int
    log_weights: np.ndarray  #: final unnormalised log weights, targeting the posterior
    log_evidence_estimate: float
    ess_history: List[float]
    resample_steps: List[int]
    rejuvenation_rates: List[float]
    #: Source bookkeeping: which vectorized run, and which row of it, each
    #: surviving particle descends from.
    runs: List[VectorRunResult] = field(repr=False, default_factory=list)
    src_run: np.ndarray = field(repr=False, default=None)
    src_idx: np.ndarray = field(repr=False, default=None)

    def log_evidence(self) -> float:
        return self.log_evidence_estimate

    def normalized_weights(self) -> np.ndarray:
        return normalize_log_weights(self.log_weights)

    def effective_sample_size(self) -> float:
        return effective_sample_size(self.log_weights)

    def site_values(self, index: int) -> np.ndarray:
        """Values of the ``index``-th latent site per particle (``nan`` if absent)."""
        out = np.empty(self.num_particles)
        for run_id, run in enumerate(self.runs):
            mask = self.src_run == run_id
            if np.any(mask):
                out[mask] = run.site_values(index)[self.src_idx[mask]]
        return out

    def posterior_mean(self, index: int) -> float:
        values = self.site_values(index)
        keep = ~np.isnan(values)
        if not np.any(keep):
            raise InferenceError(f"no particle has a latent value at index {index}")
        return weighted_mean(values[keep], self.log_weights[keep])

    def trace_for(self, particle: int) -> tr.Trace:
        run = self.runs[int(self.src_run[particle])]
        return run.trace_for(int(self.src_idx[particle]))


def smc(
    model_program: ast.Program,
    guide_program: ast.Program,
    model_entry: str,
    guide_entry: str,
    obs_trace: Sequence[tr.Message],
    num_particles: int,
    rng=None,
    ess_threshold: float = 0.5,
    rejuvenate: bool = True,
    model_args: Tuple[object, ...] = (),
    guide_args: Tuple[object, ...] = (),
    latent_channel: str = "latent",
    obs_channel: str = "obs",
    backend: str = "interp",
    jit: str = "none",
    session=None,
    workers: int = 1,
    shards: Optional[int] = None,
) -> SMCResult:
    """Run Sequential Monte Carlo with ``num_particles`` lockstep particles.

    ``backend="compiled"`` draws every population (initial and rejuvenation
    proposals) through the fused batched kernel when available; results are
    bitwise-identical to the interpretive backend under the same seed.
    ``workers``/``shards`` shard every population pass (initial draw and
    rejuvenation proposals) across the process pool; the weight updates,
    evidence increments, and resampling decisions always happen globally in
    the parent on the exactly merged population, so sharding never changes
    what SMC computes.
    """
    if num_particles <= 0:
        raise InferenceError("num_particles must be positive")
    if obs_trace is None or len(obs_trace) == 0:
        raise InferenceError(
            "SMC requires a non-empty observation trace to anneal over; "
            "use importance sampling for unconditioned models"
        )
    rng = ensure_rng(rng)

    from repro.engine.backend import make_particle_runner

    vectorizer = make_particle_runner(
        model_program,
        guide_program,
        model_entry,
        guide_entry,
        obs_trace=obs_trace,
        model_args=model_args,
        guide_args=guide_args,
        latent_channel=latent_channel,
        obs_channel=obs_channel,
        backend=backend,
        jit=jit,
        session=session,
        workers=workers,
        shards=shards,
        # SMC consumes weights and observation scores, never site ledgers.
        trim_site_scores=True,
    )

    def fresh_population() -> Tuple[VectorRunResult, np.ndarray, np.ndarray, np.ndarray]:
        sample_started = time.perf_counter()
        with span("smc.sample", particles=num_particles):
            run = vectorizer.run(num_particles, rng)
        _SMC_PHASE_SECONDS.labels(phase="sample").observe(
            time.perf_counter() - sample_started
        )
        scores = run.obs_score_matrix()
        if scores is None:
            raise InferenceError(
                "SMC needs per-observation likelihood terms, which the "
                "sequential fallback does not decompose; this model is not "
                "vectorizable — use the 'is-sequential' or 'mh' engine instead"
            )
        with np.errstate(invalid="ignore"):
            prior = run.model_log_weights - scores.sum(axis=1)
        prior = np.where(np.isneginf(run.model_log_weights), -np.inf, prior)
        return run, prior, run.guide_log_weights.copy(), scores

    run0, prior_lw, guide_lw, scores = fresh_population()
    runs = [run0]
    src_run = np.zeros(num_particles, dtype=int)
    src_idx = np.arange(num_particles)

    num_steps = scores.shape[1]
    # w_0 = prior / guide: the initial population targets γ_0 = p_prior.
    with np.errstate(invalid="ignore"):
        log_w = prior_lw - guide_lw
    log_w = np.where(np.isneginf(guide_lw), -np.inf, log_w)
    # Ẑ = mean(w_0) · Π_t Σ_i W̃_{t-1,i}·lik_t,i — the increments below are
    # shift-invariant in log_w, so no renormalisation of log_w is needed.
    log_evidence = log_mean_exp(log_w)
    if log_evidence == -math.inf:
        raise InferenceError(
            "SMC initialisation collapsed: every guide draw has zero prior "
            "density (the model/guide pair is not absolutely continuous)"
        )

    ess_history: List[float] = []
    resample_steps: List[int] = []
    rejuvenation_rates: List[float] = []

    for t in range(num_steps):
        # Evidence increment: log Σ_i W̃_{t-1,i} · exp(score_t,i).  The
        # normaliser is exact in log space (no round trip through exp), so
        # particles with tiny-but-nonzero relative weight still contribute.
        with np.errstate(invalid="ignore"):
            log_normalized = log_w - log_sum_exp(log_w)
        increment = log_sum_exp(log_normalized + scores[:, t])
        if increment == -math.inf:
            raise InferenceError(
                f"SMC weight collapse at observation {t}: no particle carries "
                "posterior mass (is the model/guide pair absolutely continuous?)"
            )
        log_evidence += increment

        log_w = log_w + scores[:, t]
        weights = normalize_log_weights(log_w)
        ess = effective_sample_size(log_w)
        ess_history.append(ess)
        _SMC_ESS.observe(ess)

        if ess < ess_threshold * num_particles:
            resample_steps.append(t)
            _SMC_RESAMPLES.inc()
            resample_started = time.perf_counter()
            with span("smc.resample", particles=num_particles, step=t):
                ancestors = systematic_resample(weights, rng)
                prior_lw = prior_lw[ancestors]
                guide_lw = guide_lw[ancestors]
                scores = scores[ancestors]
                src_run = src_run[ancestors]
                src_idx = src_idx[ancestors]
                log_w = np.zeros(num_particles)
            _SMC_PHASE_SECONDS.labels(phase="resample").observe(
                time.perf_counter() - resample_started
            )

            if rejuvenate:
                rejuvenate_started = time.perf_counter()
                with span("smc.rejuvenate", particles=num_particles, step=t):
                    proposal_run, prop_prior, prop_guide, prop_scores = fresh_population()
                    if prop_scores.shape[1] > num_steps:
                        # The model's observation count is branch-dependent and
                        # a proposal path emitted more observations than any
                        # path in the initial population — the tempering
                        # schedule cannot absorb those extra likelihood terms
                        # soundly.
                        raise InferenceError(
                            "SMC rejuvenation drew a particle with "
                            f"{prop_scores.shape[1]} observation steps but the "
                            f"tempering schedule has only {num_steps}; this model's "
                            "observation count is branch-dependent — use the 'is' "
                            "or 'mh' engine instead"
                        )
                    prop_scores = _pad_scores(prop_scores, num_steps)
                    tempered = slice(0, t + 1)
                    current_gamma = prior_lw + scores[:, tempered].sum(axis=1)
                    proposal_gamma = prop_prior + prop_scores[:, tempered].sum(axis=1)
                    with np.errstate(invalid="ignore"):
                        log_ratio = (proposal_gamma - prop_guide) - (current_gamma - guide_lw)
                    # A proposal with zero target density never wins; a current
                    # particle with zero density always loses to a viable
                    # proposal.
                    log_ratio = np.where(np.isneginf(proposal_gamma), -np.inf, log_ratio)
                    log_ratio = np.where(
                        np.isneginf(current_gamma) & ~np.isneginf(proposal_gamma),
                        np.inf,
                        log_ratio,
                    )
                    with np.errstate(divide="ignore"):
                        accept = np.log(rng.random(num_particles)) < log_ratio
                    rejuvenation_rates.append(float(np.mean(accept)))
                    if np.any(accept):
                        # Retain the proposal run only when some particle now
                        # descends from it, so rejected batches can be
                        # collected.
                        runs.append(proposal_run)
                        run_id = len(runs) - 1
                        prior_lw = np.where(accept, prop_prior, prior_lw)
                        guide_lw = np.where(accept, prop_guide, guide_lw)
                        scores = np.where(accept[:, None], prop_scores, scores)
                        src_run = np.where(accept, run_id, src_run)
                        src_idx = np.where(accept, np.arange(num_particles), src_idx)
                _SMC_PHASE_SECONDS.labels(phase="rejuvenate").observe(
                    time.perf_counter() - rejuvenate_started
                )

    return SMCResult(
        num_particles=num_particles,
        log_weights=log_w,
        log_evidence_estimate=log_evidence,
        ess_history=ess_history,
        resample_steps=resample_steps,
        rejuvenation_rates=rejuvenation_rates,
        runs=runs,
        src_run=src_run,
        src_idx=src_idx,
    )
