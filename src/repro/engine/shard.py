"""Sharded multi-process particle execution: the scale-out layer.

Particles are embarrassingly parallel: a population of ``n`` particles can be
split into contiguous *shards*, each executed by an independent runner with
its own deterministically derived RNG stream, and merged back exactly — the
merged :class:`~repro.engine.vectorize.VectorRunResult` carries the same
per-particle log-weights, recorded traces, and observation-score columns a
single run would, so every consumer (importance weights, SMC resampling
decisions, SVI gradients) is oblivious to how the population was cut.

Determinism contract
--------------------

Results are a pure function of ``(seed, num_particles, shards)`` and **never**
of the worker count:

* ``shards == 1`` consumes the caller's generator directly — bit-identical to
  the pre-sharding single-process path at any worker count;
* ``shards > 1`` consumes exactly one ``integers()`` draw from the caller's
  generator (the same draw at any worker count) to seed a
  :class:`numpy.random.SeedSequence`, whose spawned children drive the shards.
  Shard ``k`` therefore produces the same values whether it runs inline, in a
  2-process pool, or in an 8-process pool.

The determinism suite (``tests/test_shard_determinism.py``) pins both halves
of the contract for all three vectorized engines on both backends.

Execution
---------

Shard tasks run in a persistent ``multiprocessing`` pool (fork start method,
so workers inherit the parsed-program and fused-kernel caches warm and keep
their own caches warm across tasks).  Large per-shard arrays (log-weights,
observation scores, recorded trace columns) travel back through POSIX
shared-memory blocks instead of the pickle pipe; small results take the
plain pickle path.  When no pool can be created (restricted sandboxes,
``workers == 1``) shards run inline in the parent — same results, no
parallelism — so sharding never *fails*, it only degrades.
"""

from __future__ import annotations

import atexit
import os
import time
from dataclasses import dataclass, field, replace
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.core import ast
from repro.core.semantics import traces as tr
from repro.engine.vectorize import VecMessage, VectorRunResult, _Leaf
from repro.errors import InferenceError
from repro.obs import DEFAULT_COUNT_BUCKETS, REGISTRY, span
from repro.obs import trace as obs_trace_mod
from repro.utils.rng import ensure_rng

_SHARD_RUN_SECONDS = REGISTRY.histogram(
    "repro_shard_run_seconds",
    "Wall time of one shard task as measured inside its executing process "
    "(worker or inline).",
)
_SHARD_MERGE_SECONDS = REGISTRY.histogram(
    "repro_shard_merge_seconds",
    "Wall time to reassemble one wave's shard results into a global "
    "population.",
)
_SHARD_TASKS = REGISTRY.counter(
    "repro_shard_tasks_total",
    "Shard tasks executed, by result transport (shm: shared-memory block; "
    "pickle: plain pipe; inline: ran in the parent process).",
    labels=("transport",),
)
_SHARD_PAYLOAD_BYTES = REGISTRY.counter(
    "repro_shard_payload_bytes_total",
    "Array bytes carried by shard results back to the parent (0 for results "
    "that never left the parent process).",
)
_SHARD_PARTICLES = REGISTRY.histogram(
    "repro_shard_particles",
    "Particles per shard task.",
    buckets=DEFAULT_COUNT_BUCKETS,
)
_POOL_EVENTS = REGISTRY.counter(
    "repro_pool_rebuilds_total",
    "Worker-pool lifecycle events: broken (an infrastructure failure tore "
    "the pool down), rebuilt (a later wave recreated it), recovered (a "
    "rebuilt pool completed a wave, resetting the failure budget), gave_up "
    "(the failure cap was hit; execution stays inline until shutdown_pool).",
    labels=("event",),
)

#: Arrays smaller than this (total bytes per shard result) are returned
#: through the pickle pipe; shared memory only pays for itself beyond it.
SHM_MIN_BYTES = 1 << 15


def shm_enabled() -> bool:
    """Whether shard results may travel through POSIX shared memory."""
    return os.environ.get("REPRO_SHARD_SHM", "1") != "0"


# ---------------------------------------------------------------------------
# Shard plans and RNG stream derivation
# ---------------------------------------------------------------------------


def plan_shards(num_particles: int, num_shards: int) -> List[Tuple[int, int]]:
    """Split ``num_particles`` into ``num_shards`` contiguous ``(start, count)`` spans.

    The first ``num_particles % num_shards`` shards take one extra particle,
    so shard sizes differ by at most one.  The plan is a pure function of its
    arguments — the determinism contract depends on that.
    """
    if num_particles <= 0:
        raise InferenceError("num_particles must be positive")
    if num_shards <= 0:
        raise InferenceError("shards must be positive")
    num_shards = min(num_shards, num_particles)
    base, extra = divmod(num_particles, num_shards)
    spans: List[Tuple[int, int]] = []
    start = 0
    for k in range(num_shards):
        count = base + (1 if k < extra else 0)
        spans.append((start, count))
        start += count
    return spans


def derive_shard_seeds(rng: np.random.Generator, num_shards: int) -> List[np.random.SeedSequence]:
    """Derive one independent seed sequence per shard from the caller's stream.

    Consumes exactly one draw from ``rng`` regardless of ``num_shards``' value
    or how the shards will be executed — this is what makes sharded results
    independent of the worker count.  Mirrors :func:`repro.utils.rng.fork_rng`.
    """
    entropy = int(rng.integers(0, 2**63 - 1))
    return list(np.random.SeedSequence(entropy).spawn(num_shards))


def resolve_shards(workers: int, shards: Optional[int]) -> int:
    """Validate a request's shard controls and resolve the shard count.

    ``shards=None`` defaults to the worker count (one shard per worker, the
    common case).  Pin ``shards`` explicitly to make results independent of
    how many workers happen to serve the request.
    """
    if workers < 1:
        raise InferenceError("workers must be >= 1")
    if shards is None:
        return workers
    if shards < 1:
        raise InferenceError("shards must be >= 1")
    return shards


# ---------------------------------------------------------------------------
# Shard tasks (picklable work units) and their worker-side execution
# ---------------------------------------------------------------------------


@dataclass
class ShardTask:
    """One shard's work order: a self-contained, picklable run request."""

    model_program: ast.Program
    guide_program: ast.Program
    model_entry: str
    guide_entry: str
    obs_trace: Optional[Tuple[tr.Message, ...]]
    model_args: Tuple[object, ...]
    guide_args: Tuple[object, ...]
    latent_channel: str
    obs_channel: str
    backend: str
    #: Number of particles this shard executes.
    count: int
    #: The shard's independent RNG stream (spawned from the request seed).
    seed: np.random.SeedSequence = None
    #: Global index of the shard's first particle (used by the merge).
    start: int = 0
    #: Drop the per-site score ledgers before the trip home.  They exist for
    #: SVI's Rao-Blackwellized gradients only; ``is``/``smc`` requests trim
    #: them so the dominant share of the result payload never crosses the
    #: process boundary.  Weights, traces, and observation scores are
    #: unaffected.
    trim_site_scores: bool = False
    #: Compiled-backend JIT tier the shard executes (frozen by the parent,
    #: like ``backend``, so workers never re-resolve the tier).
    jit: str = "none"
    #: Position of this shard in its wave's plan (names its trace track).
    index: int = 0
    #: Capture trace spans in the executing process and ship them home.
    #: Stamped from the parent's tracing state; never consumes randomness,
    #: so traced and untraced runs are bit-identical.
    trace: bool = False
    #: The parent recorder's ``perf_counter`` epoch.  ``perf_counter`` is
    #: CLOCK_MONOTONIC on Linux, so timestamps taken in forked workers
    #: relative to this epoch line up with the parent's timeline.
    trace_epoch: float = 0.0


@dataclass
class ShardResult:
    """One shard's finished leaves plus the run flags the merge needs."""

    leaves: List[_Leaf]
    vectorized: bool
    backend: str
    #: JIT tier the shard ran at (mirrors ``VectorRunResult.jit``).
    jit: str = "none"
    #: Compiled→interp fallback reason observed inside the shard, if any.
    fallback_reason: Optional[str] = None
    #: Wall time of the shard task in its executing process.
    wall_s: float = 0.0
    #: Array bytes the result carried across the process boundary (0 when it
    #: never left the parent).
    payload_bytes: int = 0
    #: Trace events captured by a pool worker (``None`` when the task ran in
    #: the parent, whose recorder the spans reached directly).
    trace_events: Optional[List[dict]] = None


def run_shard_task(task: ShardTask) -> ShardResult:
    """Execute one shard in the current process (worker entry point).

    Builds a runner through the ordinary backend seam — the worker process
    keeps its module-level fused-kernel cache warm across tasks, so repeated
    requests against the same model/guide pair compile at most once per
    worker.
    """
    from repro.engine.backend import make_particle_runner

    started = time.perf_counter()
    with span(
        "shard.run",
        _tid=task.index + 1,
        shard=task.index,
        particles=task.count,
        backend=task.backend,
        jit=task.jit,
    ):
        runner = make_particle_runner(
            task.model_program,
            task.guide_program,
            task.model_entry,
            task.guide_entry,
            obs_trace=task.obs_trace,
            model_args=task.model_args,
            guide_args=task.guide_args,
            latent_channel=task.latent_channel,
            obs_channel=task.obs_channel,
            backend=task.backend,
            jit=task.jit,
            trim_site_scores=task.trim_site_scores,
        )
        run = runner.run(task.count, np.random.default_rng(task.seed))
    leaves = run.leaves
    if task.trim_site_scores:
        leaves = [
            replace(leaf, model_site_scores=None, guide_site_scores=None) for leaf in leaves
        ]
    _SHARD_PARTICLES.observe(task.count)
    return ShardResult(
        leaves=leaves,
        vectorized=run.vectorized,
        backend=run.backend,
        jit=getattr(run, "jit", "none"),
        fallback_reason=getattr(run, "fallback_reason", None),
        wall_s=time.perf_counter() - started,
    )


# ---------------------------------------------------------------------------
# Shared-memory transport for shard results
# ---------------------------------------------------------------------------


@dataclass
class _ArrayRef:
    """Placeholder for a NumPy array parked in the result's shm block."""

    offset: int
    shape: Tuple[int, ...]
    dtype: str


class _ArrayPacker:
    """Collects contiguous arrays and replaces them with :class:`_ArrayRef`."""

    def __init__(self) -> None:
        self.chunks: List[np.ndarray] = []
        self.offset = 0

    def take(self, value: object) -> object:
        """Park ``value`` in the block if it is a packable array."""
        if not isinstance(value, np.ndarray) or value.dtype.kind not in "fiub":
            return value
        arr = np.ascontiguousarray(value)
        ref = _ArrayRef(self.offset, arr.shape, arr.dtype.str)
        self.chunks.append(arr)
        self.offset += arr.nbytes
        return ref


def _map_leaf(leaf: _Leaf, take) -> _Leaf:
    """Apply ``take`` to every array slot of one leaf (pack and unpack share this)."""
    return _Leaf(
        indices=take(leaf.indices),
        model_log_weights=take(leaf.model_log_weights),
        guide_log_weights=take(leaf.guide_log_weights),
        recorded={
            name: [VecMessage(m.kind, m.provider, take(m.payload)) for m in messages]
            for name, messages in leaf.recorded.items()
        },
        obs_scores=(
            None if leaf.obs_scores is None else [take(s) for s in leaf.obs_scores]
        ),
        model_value=take(leaf.model_value),
        guide_value=take(leaf.guide_value),
        model_site_scores=(
            None
            if leaf.model_site_scores is None
            else [(ch, take(s)) for ch, s in leaf.model_site_scores]
        ),
        guide_site_scores=(
            None
            if leaf.guide_site_scores is None
            else [(ch, take(s)) for ch, s in leaf.guide_site_scores]
        ),
    )


def pack_result(result: ShardResult) -> Tuple[str, object, object]:
    """Encode a shard result for the trip back to the parent process.

    Returns ``("pickle", result, None)`` for small payloads, or
    ``("shm", manifest, shm_name)`` with every numeric array parked in one
    shared-memory block — the pickle pipe then carries only the (small)
    structural skeleton.  Falls back to pickling whenever shared memory is
    unavailable.
    """
    if not shm_enabled():
        return ("pickle", result, None)
    packer = _ArrayPacker()
    manifest = replace(
        result,
        leaves=[_map_leaf(leaf, packer.take) for leaf in result.leaves],
        payload_bytes=packer.offset,
    )
    if packer.offset < SHM_MIN_BYTES:
        return ("pickle", replace(result, payload_bytes=packer.offset), None)
    try:
        from multiprocessing import shared_memory

        shm = shared_memory.SharedMemory(create=True, size=packer.offset)
    except Exception:
        return ("pickle", result, None)
    try:
        # The parent owns the block's lifetime: it unlinks after unpacking.
        # Deregister it from this process's resource tracker so the tracker
        # does not double-unlink (and warn) at worker shutdown.
        from multiprocessing import resource_tracker

        resource_tracker.unregister(shm._name, "shared_memory")  # noqa: SLF001
    except Exception:
        pass
    view = np.frombuffer(shm.buf, dtype=np.uint8)
    pos = 0
    for chunk in packer.chunks:
        raw = chunk.reshape(-1).view(np.uint8)
        view[pos : pos + chunk.nbytes] = raw
        pos += chunk.nbytes
    # Release the numpy view before closing: a SharedMemory with live
    # exported buffers refuses to close its mmap.
    del view
    name = shm.name
    shm.close()
    return ("shm", manifest, name)


def _restore_from_block(shm, payload: ShardResult) -> ShardResult:
    """Copy every :class:`_ArrayRef` out of the block into fresh arrays.

    Runs in its own frame so no view of ``shm.buf`` outlives the return —
    closing a ``SharedMemory`` with live exported buffers raises.
    """
    buf = np.frombuffer(shm.buf, dtype=np.uint8)

    def restore(value: object) -> object:
        if not isinstance(value, _ArrayRef):
            return value
        dtype = np.dtype(value.dtype)
        nbytes = dtype.itemsize * int(np.prod(value.shape, dtype=np.int64))
        flat = buf[value.offset : value.offset + nbytes]
        # Copy out: the block is unlinked as soon as unpacking finishes.
        return flat.view(dtype).reshape(value.shape).copy()

    result = replace(
        payload, leaves=[_map_leaf(leaf, restore) for leaf in payload.leaves]
    )
    del buf
    return result


def unpack_result(encoded: Tuple[str, object, object]) -> ShardResult:
    """Decode :func:`pack_result`'s wire format (parent side)."""
    kind, payload, shm_name = encoded
    if kind == "pickle":
        return payload
    from multiprocessing import shared_memory

    shm = shared_memory.SharedMemory(name=shm_name)
    try:
        return _restore_from_block(shm, payload)
    finally:
        shm.close()
        try:
            shm.unlink()
        except FileNotFoundError:
            pass


def _run_shard_task_packed(task: ShardTask) -> Tuple[str, object, object]:
    """Pool target: execute one shard and encode the result for transport.

    Task-level exceptions are returned as ``("error", exc, None)`` values
    rather than raised: raising through ``pool.map`` would discard the other
    tasks' already-returned encodings (leaking their shared-memory blocks,
    which only the parent unlinks) and make a per-request error look like
    pool breakage.

    When the task asks for tracing, a worker-local recorder is installed
    against the parent's ``perf_counter`` epoch for the duration of the task
    and its captured events ride home inside the result — the parent's merge
    ingests them, so shard workers appear as named tracks in the exported
    timeline.  The recorder swap is restored in ``finally``: pool workers are
    persistent, and a forked worker may even have inherited the parent's
    enabled-tracing state, which must not leak into later untraced tasks.
    """
    try:
        worker_recorder = None
        saved = (obs_trace_mod._ENABLED, obs_trace_mod._RECORDER)
        if task.trace:
            worker_recorder = obs_trace_mod.enable_tracing(
                epoch=task.trace_epoch, default_tid=task.index + 1
            )
        try:
            result = run_shard_task(task)
        finally:
            obs_trace_mod._ENABLED, obs_trace_mod._RECORDER = saved
        if worker_recorder is not None:
            result = replace(result, trace_events=list(worker_recorder.events))
        return pack_result(result)
    except Exception as exc:  # noqa: BLE001 - transported to the parent
        return ("error", exc, None)


# ---------------------------------------------------------------------------
# The persistent worker pool
# ---------------------------------------------------------------------------

_POOL = None
_POOL_SIZE = 0
#: Consecutive infrastructure failures (killed worker, closed pipe, failed
#: fork) since the last healthy wave.  A successful pool wave resets it; at
#: ``POOL_MAX_FAILURES`` the pool stops being rebuilt and execution stays
#: inline until :func:`shutdown_pool` explicitly resets the budget.
_POOL_FAILURES = 0
POOL_MAX_FAILURES = 3


def _make_pool(workers: int):
    """Create a fork-context pool, or ``None`` where fork is unavailable."""
    import multiprocessing

    try:
        ctx = multiprocessing.get_context("fork")
    except ValueError:
        return None
    return ctx.Pool(processes=workers)


def ensure_pool(workers: int):
    """Return the persistent worker pool, growing or rebuilding it if needed.

    Returns ``None`` (inline execution) when ``workers <= 1``, when the
    platform cannot fork, or when ``POOL_MAX_FAILURES`` infrastructure
    failures have happened without a healthy wave in between.  Below that
    cap a broken pool is rebuilt on the next call — a single killed worker
    costs one inline wave, not the rest of the server's lifetime.  The pool
    is a process-wide singleton: long-running servers reuse warm workers
    across requests, which is what keeps per-request latency flat.
    """
    global _POOL, _POOL_SIZE, _POOL_FAILURES
    if workers <= 1 or _POOL_FAILURES >= POOL_MAX_FAILURES:
        return None
    if _POOL is not None and _POOL_SIZE >= workers:
        return _POOL
    if _POOL is not None:
        _shutdown(_POOL)
        _POOL = None
    rebuilding = _POOL_FAILURES > 0
    try:
        _POOL = _make_pool(workers)
    except Exception:
        _POOL = None
    if _POOL is None:
        _note_pool_failure()
        return None
    if rebuilding:
        _POOL_EVENTS.labels(event="rebuilt").inc()
    _POOL_SIZE = workers
    return _POOL


def _note_pool_failure() -> None:
    """Count one infrastructure failure, giving up at the retry cap."""
    global _POOL_FAILURES
    _POOL_FAILURES += 1
    _POOL_EVENTS.labels(event="broken").inc()
    if _POOL_FAILURES >= POOL_MAX_FAILURES:
        _POOL_EVENTS.labels(event="gave_up").inc()


def pool_available(workers: int = 2) -> bool:
    """Whether a real multi-process pool can serve ``workers`` workers."""
    return ensure_pool(workers) is not None


def pool_worker_pids() -> "list[int]":
    """PIDs of the live pool workers (empty when execution is inline).

    Exposed through the server's ``op: stats`` so failure-injection harnesses
    (``repro loadgen --inject-worker-kill-after``) can kill a real worker
    mid-wave and assert the pool-rebuild path keeps sessions serving.
    """
    if _POOL is None:
        return []
    try:
        return [proc.pid for proc in _POOL._pool if proc.pid is not None]
    except Exception:
        return []


def _shutdown(pool) -> None:
    try:
        pool.terminate()
        pool.join()
    except Exception:
        pass


def shutdown_pool() -> None:
    """Tear down the persistent pool (tests, server shutdown, interpreter exit).

    Also resets the infrastructure-failure budget: an explicit teardown is
    the operator's way of saying "try forking again".
    """
    global _POOL, _POOL_SIZE, _POOL_FAILURES
    if _POOL is not None:
        _shutdown(_POOL)
    _POOL = None
    _POOL_SIZE = 0
    _POOL_FAILURES = 0


atexit.register(shutdown_pool)


def execute_tasks(tasks: Sequence[ShardTask], workers: int) -> List[ShardResult]:
    """Run shard tasks, distributing over the pool when one is available.

    Task results come back in task order whichever path executes them, and
    the per-task RNG streams are baked into the tasks themselves, so the
    pool and inline paths are bit-identical.  Task-level errors (a bad
    request, an unsupported model) re-raise here after every shard's
    shared-memory block has been reclaimed and leave the pool healthy; only
    infrastructure failures (killed worker, closed pipe) tear the pool down,
    and that wave re-runs inline — a sharded run degrades, it does not fail.
    The next wave rebuilds the pool (capped at ``POOL_MAX_FAILURES``
    consecutive failures; a completed pool wave resets the budget).
    """
    global _POOL, _POOL_SIZE, _POOL_FAILURES
    pool = ensure_pool(workers) if len(tasks) > 1 else None
    if pool is not None:
        try:
            encoded_results = pool.map(_run_shard_task_packed, tasks)
        except Exception:
            # Tear down the broken pool but keep the failure budget: a later
            # ensure_pool call rebuilds it (shutdown_pool would forgive).
            if _POOL is not None:
                _shutdown(_POOL)
            _POOL = None
            _POOL_SIZE = 0
            _note_pool_failure()
            encoded_results = None
        else:
            if _POOL_FAILURES:
                _POOL_FAILURES = 0
                _POOL_EVENTS.labels(event="recovered").inc()
        if encoded_results is not None:
            # Unpack (and thereby unlink) every shard's block before
            # re-raising any task error, so a failing shard never leaks the
            # successful shards' shared memory.
            results: List[ShardResult] = []
            first_error: Optional[Exception] = None
            for encoded in encoded_results:
                if encoded[0] == "error":
                    first_error = first_error or encoded[1]
                else:
                    _SHARD_TASKS.labels(transport=encoded[0]).inc()
                    result = unpack_result(encoded)
                    _SHARD_PAYLOAD_BYTES.inc(result.payload_bytes)
                    results.append(result)
            if first_error is not None:
                raise first_error
            return results
    _SHARD_TASKS.labels(transport="inline").inc(len(tasks))
    return [run_shard_task(task) for task in tasks]


# ---------------------------------------------------------------------------
# The sharded runner: a drop-in particle runner for the engines
# ---------------------------------------------------------------------------


@dataclass
class ShardWave:
    """The prepared tasks and layout of one sharded run (before execution).

    The serving layer coalesces several requests by concatenating their
    waves' tasks into a single pool submission; each wave then merges its own
    shard results, so batching changes scheduling only, never values.
    """

    num_particles: int
    tasks: List[ShardTask] = field(default_factory=list)

    def merge(
        self, results: Sequence[ShardResult], latent_channel: str, obs_channel: str
    ) -> VectorRunResult:
        """Reassemble shard results into one global run result, exactly.

        Leaf particle indices are shifted from shard-local to global
        positions; everything else concatenates.  Per-particle quantities
        land at the same global index regardless of the shard plan, so
        downstream consumers see one coherent population.  Worker-captured
        trace events are ingested into the parent recorder here (one named
        track per shard), and each shard's wall time feeds the shard-run
        histogram.
        """
        merge_started = time.perf_counter()
        recorder = obs_trace_mod.current_recorder()
        for task, result in zip(self.tasks, results):
            _SHARD_RUN_SECONDS.observe(result.wall_s)
            if recorder is not None:
                recorder.set_thread_name(task.index + 1, f"shard-{task.index}")
                if result.trace_events:
                    recorder.ingest(result.trace_events)
        with span("shard.merge", shards=len(self.tasks), particles=self.num_particles):
            leaves: List[_Leaf] = []
            for task, result in zip(self.tasks, results):
                for leaf in result.leaves:
                    leaves.append(replace(leaf, indices=leaf.indices + task.start))
        _SHARD_MERGE_SECONDS.observe(time.perf_counter() - merge_started)
        fallback_reasons = [r.fallback_reason for r in results if r.fallback_reason]
        return VectorRunResult(
            self.num_particles,
            leaves,
            latent_channel=latent_channel,
            obs_channel=obs_channel,
            vectorized=all(r.vectorized for r in results),
            backend=(
                "compiled"
                if results and all(r.backend == "compiled" for r in results)
                else "interp"
            ),
            jit=results[0].jit if results else "none",
            fallback_reason=fallback_reasons[0] if fallback_reasons else None,
        )


class ShardedParticleRunner:
    """Distributes a particle population over per-shard runners.

    Exposes the same surface the engines use on a
    :class:`~repro.engine.vectorize.ParticleVectorizer` — :meth:`run`,
    :meth:`rescore_group`, the channel names, and the compiled-fallback
    diagnostics — so ``is``/``smc``/``svi`` are oblivious to sharding.
    Replay-based machinery (SVI rescoring) always runs in-process on the
    merged leaves: rescoring consumes no randomness, so there is nothing to
    shard.
    """

    def __init__(
        self,
        model_program: ast.Program,
        guide_program: ast.Program,
        model_entry: str,
        guide_entry: str,
        obs_trace: Optional[Sequence[tr.Message]] = None,
        model_args: Tuple[object, ...] = (),
        guide_args: Tuple[object, ...] = (),
        latent_channel: str = "latent",
        obs_channel: str = "obs",
        backend: str = "interp",
        jit: str = "none",
        session=None,
        workers: int = 1,
        shards: int = 1,
        trim_site_scores: bool = False,
    ):
        from repro.engine.backend import make_particle_runner

        self.workers = max(1, int(workers))
        self.num_shards = max(1, int(shards))
        self.latent_channel = latent_channel
        self.obs_channel = obs_channel
        self.obs_trace = tuple(obs_trace) if obs_trace is not None else None
        #: In-process runner: serves 1-shard runs (bit-identical legacy path)
        #: and SVI group rescoring.
        self.local = make_particle_runner(
            model_program,
            guide_program,
            model_entry,
            guide_entry,
            obs_trace=obs_trace,
            model_args=model_args,
            guide_args=guide_args,
            latent_channel=latent_channel,
            obs_channel=obs_channel,
            backend=backend,
            jit=jit,
            session=session,
            trim_site_scores=trim_site_scores,
        )
        # Fallback state is resolved ONCE here, at construction, and frozen
        # on the runner itself.  It used to be read through ``self.local`` on
        # every access, which let concurrently-running requests observe a
        # torn view (one thread seeing the compiled verdict while another
        # still saw the pre-resolution default).  ``effective_backend`` is
        # what every shard of every run of this runner executes.
        self.requested_backend = backend
        self.jit = jit
        self.fallback_reason: Optional[str] = getattr(self.local, "fallback_reason", None)
        self.effective_backend: str = (
            backend if self.fallback_reason is None else "interp"
        )
        self._task_template = ShardTask(
            model_program=model_program,
            guide_program=guide_program,
            model_entry=model_entry,
            guide_entry=guide_entry,
            obs_trace=self.obs_trace,
            model_args=model_args,
            guide_args=guide_args,
            latent_channel=latent_channel,
            obs_channel=obs_channel,
            # Freeze the *resolved* backend so workers never re-attempt a
            # compilation the parent already knows falls back.
            backend=self.effective_backend,
            jit=jit if self.effective_backend == "compiled" else "none",
            count=0,
            trim_site_scores=trim_site_scores,
        )

    @property
    def backend(self) -> str:
        """The backend the underlying runners execute (after fallback)."""
        return self.effective_backend

    def prepare(self, num_particles: int, rng: np.random.Generator) -> ShardWave:
        """Build the shard tasks for one run without executing them.

        Consumes exactly one draw from ``rng`` (to derive the shard streams),
        independent of worker count — see the module determinism contract.
        """
        spans = plan_shards(num_particles, self.num_shards)
        seeds = derive_shard_seeds(rng, len(spans))
        recorder = obs_trace_mod.current_recorder()
        tracing = obs_trace_mod.tracing_enabled() and recorder is not None
        tasks = [
            replace(
                self._task_template,
                count=count,
                start=start,
                seed=seed,
                index=k,
                trace=tracing,
                trace_epoch=recorder.epoch if tracing else 0.0,
            )
            for k, ((start, count), seed) in enumerate(zip(spans, seeds))
        ]
        return ShardWave(num_particles=num_particles, tasks=tasks)

    def run(self, num_particles: int, rng=None) -> VectorRunResult:
        """Run ``num_particles`` particles across the shard plan and merge.

        With a single shard this delegates to the in-process runner on the
        caller's generator — bit-identical to the unsharded path.
        """
        rng = ensure_rng(rng)
        if self.num_shards == 1 or num_particles == 1:
            run = self.local.run(num_particles, rng)
        else:
            wave = self.prepare(num_particles, rng)
            results = execute_tasks(wave.tasks, self.workers)
            run = wave.merge(results, self.latent_channel, self.obs_channel)
        # A gate-level fallback (unsupported fragment) is resolved here at
        # construction, so the interp runners below never see it — stamp the
        # hoisted reason onto the result for diagnostics.  Runtime fallbacks
        # already arrive stamped by the compiled runner itself.
        if self.fallback_reason is not None and getattr(run, "fallback_reason", None) is None:
            run.fallback_reason = self.fallback_reason
        return run

    def rescore_group(self, leaf: _Leaf, rng=None):
        """Replay one recorded control-flow group in-process (no randomness)."""
        return self.local.rescore_group(leaf, rng)


@dataclass
class ShardPlanInfo:
    """Human-readable description of how a request will be executed."""

    workers: int
    shards: int
    pooled: bool

    def describe(self) -> str:
        """One-line summary for CLI output and server diagnostics."""
        mode = "process pool" if self.pooled else "inline"
        return f"{self.shards} shard(s) over {self.workers} worker(s), {mode}"


def plan_info(workers: int, shards: Optional[int]) -> ShardPlanInfo:
    """Resolve a request's shard controls into a :class:`ShardPlanInfo`."""
    resolved = resolve_shards(workers, shards)
    pooled = workers > 1 and resolved > 1 and pool_available(workers)
    return ShardPlanInfo(workers=workers, shards=resolved, pooled=pooled)
