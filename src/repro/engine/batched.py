"""Distributions over a particle axis: one family, per-particle parameters.

A :class:`BatchedDist` is the vectorized runtime's counterpart of a
:class:`~repro.dists.base.Distribution`: it describes the distribution at one
sample site for a whole *group* of particles at once.  Parameters may be
Python scalars (shared by every particle) or ``(n,)`` arrays (one value per
particle, e.g. ``Normal(x1, 1.0)`` where ``x1`` was sampled upstream).

Resolution strategy:

* all parameters scalar — build the ordinary scalar distribution once and
  delegate to its ``sample_n`` / ``log_prob_batch`` batch API;
* array parameters with a closed-form NumPy implementation — sample and
  score the whole group in one vectorized call;
* anything else (e.g. ``Cat`` with per-particle weights) — fall back to a
  loop of scalar distributions, so exotic cases stay exactly as correct as
  the sequential interpreter.
"""

from __future__ import annotations

import math
from typing import List, Optional, Sequence

import numpy as np

from repro.core import ast
from repro.dists.base import Distribution
from repro.dists.continuous import (
    beta_log_prob_kernel,
    gamma_log_prob_kernel,
    normal_log_prob_kernel,
    uniform01_log_prob_kernel,
)
from repro.dists.discrete import (
    bernoulli_log_prob_kernel,
    geometric_log_prob_kernel,
    poisson_log_prob_kernel,
)
from repro.dists.factory import make_distribution
from repro.errors import EvaluationError


def _broadcast(value, n: int) -> np.ndarray:
    """Broadcast a scalar or ``(n,)`` array parameter to shape ``(n,)``."""
    arr = np.asarray(value, dtype=float)
    if arr.ndim == 0:
        return np.full(n, float(arr))
    if arr.shape != (n,):
        raise EvaluationError(
            f"distribution parameter has shape {arr.shape}, expected ({n},)"
        )
    return arr


def _require_all(mask: np.ndarray, kind: ast.DistKind, what: str) -> None:
    if not bool(np.all(mask)):
        raise EvaluationError(
            f"invalid parameters for {kind.value}: {what} (failed for "
            f"{int(np.size(mask) - np.count_nonzero(mask))} particle(s))"
        )


class BatchedDist:
    """The distribution at one sample site for a group of ``n`` particles."""

    def __init__(self, kind: ast.DistKind, args: Sequence[object], n: int):
        self.kind = kind
        self.n = int(n)
        self._scalar: Optional[Distribution] = None
        self._params: List[np.ndarray] = []

        if all(np.ndim(a) == 0 for a in args):
            # Shared parameters: one scalar distribution serves the group.
            self._scalar = make_distribution(kind, [float(a) for a in args])
            return

        self._params = [_broadcast(a, self.n) for a in args]
        self._validate()

    @classmethod
    def from_scalar(cls, dist: Distribution, n: int) -> "BatchedDist":
        """Wrap an existing scalar distribution (e.g. passed in as an argument)."""
        batched = cls.__new__(cls)
        batched.kind = None
        batched.n = int(n)
        batched._scalar = dist
        batched._params = []
        return batched

    # -- parameter validation (mirrors the scalar constructors) ---------------

    def _validate(self) -> None:
        kind, p = self.kind, self._params
        finite = np.isfinite
        if kind is ast.DistKind.NORMAL:
            _require_all(finite(p[0]), kind, "mean must be a finite real")
            _require_all(finite(p[1]) & (p[1] > 0.0), kind, "stddev must be positive")
        elif kind is ast.DistKind.GAMMA:
            _require_all(finite(p[0]) & (p[0] > 0.0), kind, "shape must be positive")
            _require_all(finite(p[1]) & (p[1] > 0.0), kind, "rate must be positive")
        elif kind is ast.DistKind.BETA:
            _require_all(finite(p[0]) & (p[0] > 0.0), kind, "alpha must be positive")
            _require_all(finite(p[1]) & (p[1] > 0.0), kind, "beta must be positive")
        elif kind in (ast.DistKind.BER, ast.DistKind.GEO):
            _require_all((p[0] > 0.0) & (p[0] < 1.0), kind, "p must lie in (0, 1)")
        elif kind is ast.DistKind.POIS:
            _require_all(finite(p[0]) & (p[0] > 0.0), kind, "rate must be positive")
        elif kind is ast.DistKind.UNIF:
            pass
        # CAT and anything unknown validate per particle in the scalar loop.

    # -- the batched operations ----------------------------------------------

    def sample(self, rng: np.random.Generator) -> np.ndarray:
        """Draw one value per particle."""
        if self._scalar is not None:
            return self._scalar.sample_n(rng, self.n)

        kind, p, n = self.kind, self._params, self.n
        if kind is ast.DistKind.NORMAL:
            return rng.normal(p[0], p[1], size=n)
        if kind is ast.DistKind.GAMMA:
            return np.maximum(rng.gamma(p[0], 1.0 / p[1], size=n), math.ulp(0.0))
        if kind is ast.DistKind.BETA:
            return np.clip(rng.beta(p[0], p[1], size=n), 1e-12, 1.0 - 1e-12)
        if kind is ast.DistKind.UNIF:
            return np.clip(rng.random(n), 1e-12, 1.0 - 1e-12)
        if kind is ast.DistKind.BER:
            return rng.random(n) < p[0]
        if kind is ast.DistKind.GEO:
            return rng.geometric(p[0], size=n) - 1
        if kind is ast.DistKind.POIS:
            return rng.poisson(p[0], size=n)
        return self._sample_loop(rng)

    def log_prob(self, values) -> np.ndarray:
        """Score one value per particle; ``-inf`` outside the support."""
        if self._scalar is not None:
            return self._scalar.log_prob_batch(values)

        kind, p = self.kind, self._params
        arr = np.asarray(values)
        if kind is ast.DistKind.BER:
            if arr.dtype.kind != "b":
                return self._log_prob_loop(values)
            return bernoulli_log_prob_kernel(p[0], arr)
        if arr.dtype == object or arr.dtype.kind == "b":
            return self._log_prob_loop(values)
        x = arr.astype(float, copy=False)

        if kind is ast.DistKind.NORMAL:
            return normal_log_prob_kernel(p[0], p[1], x)
        if kind is ast.DistKind.GAMMA:
            return gamma_log_prob_kernel(p[0], p[1], x)
        if kind is ast.DistKind.BETA:
            return beta_log_prob_kernel(p[0], p[1], x)
        if kind is ast.DistKind.UNIF:
            return uniform01_log_prob_kernel(x)
        if kind is ast.DistKind.GEO:
            return geometric_log_prob_kernel(p[0], x)
        if kind is ast.DistKind.POIS:
            return poisson_log_prob_kernel(p[0], x)
        return self._log_prob_loop(values)

    # -- scalar-loop fallbacks (exotic families, e.g. Cat with array weights) --

    def _per_particle(self, index: int) -> Distribution:
        return make_distribution(self.kind, [float(p[index]) for p in self._params])

    def _sample_loop(self, rng: np.random.Generator) -> np.ndarray:
        return np.asarray([self._per_particle(i).sample(rng) for i in range(self.n)])

    def _log_prob_loop(self, values) -> np.ndarray:
        batch = list(values) if not isinstance(values, np.ndarray) else values
        return np.asarray(
            [self._per_particle(i).log_prob(batch[i]) for i in range(self.n)],
            dtype=float,
        )

    def __repr__(self) -> str:
        if self._scalar is not None:
            return f"BatchedDist({self._scalar!r} x {self.n})"
        return f"BatchedDist({self.kind.value}[...] x {self.n})"
