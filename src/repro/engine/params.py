"""Constrained variational parameters: transforms and the :class:`ParamStore`.

Gradient-based SVI optimises an *unconstrained* real vector, but guide
programs consume *constrained* quantities — a positive scale, a simplex of
category weights.  Each parameter therefore carries a :class:`Transform`
mapping the optimiser's unconstrained value to the constrained value the
guide program receives:

==============  ========================  ==================================
constraint      forward map               typical use
==============  ========================  ==================================
``real``        identity                  locations, regression coefficients
``positive``    softplus ``log(1+e^u)``   scales, rates, shape parameters
``unit``        logistic sigmoid          probabilities in ``(0, 1)``
``simplex``     softmax over the vector   categorical weight vectors
==============  ========================  ==================================

This replaces the ad-hoc ``theta_projection`` callback of the
finite-difference optimiser (:func:`repro.inference.vi.svi`): instead of
clamping after each step — which silently changes the objective at the
boundary — the transform reparameterises the problem so every unconstrained
step lands inside the constraint set.

The :class:`ParamStore` keeps named parameters with their transforms,
exposes the unconstrained values as the dict the shared optimisers
(:mod:`repro.minipyro.infer.optim`) update in place, and builds the
constrained argument tuple a guide entry procedure expects.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import InferenceError


class Transform:
    """A smooth bijection from unconstrained reals onto a constraint set.

    ``forward`` maps the optimiser's unconstrained value to the constrained
    value the guide program consumes; ``inverse`` initialises the
    unconstrained value from a constrained starting point.  Both operate on
    scalars (0-d arrays) and vectors alike.
    """

    name = "transform"

    def forward(self, unconstrained: np.ndarray) -> np.ndarray:
        raise NotImplementedError

    def inverse(self, constrained: np.ndarray) -> np.ndarray:
        raise NotImplementedError

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}()"


class RealTransform(Transform):
    """Identity: the parameter is already unconstrained."""

    name = "real"

    def forward(self, unconstrained: np.ndarray) -> np.ndarray:
        return unconstrained

    def inverse(self, constrained: np.ndarray) -> np.ndarray:
        return constrained


class PositiveTransform(Transform):
    """Positivity via the softplus map ``u ↦ log(1 + e^u)``.

    Numerically stable in both directions: the forward map is
    ``logaddexp(0, u)`` (no overflow for large ``u``), the inverse is
    ``c + log1p(-e^{-c})`` (no catastrophic cancellation for large ``c``).
    """

    name = "positive"

    def forward(self, unconstrained: np.ndarray) -> np.ndarray:
        return np.logaddexp(0.0, unconstrained)

    def inverse(self, constrained: np.ndarray) -> np.ndarray:
        c = np.asarray(constrained, dtype=float)
        if np.any(c <= 0.0):
            raise InferenceError(
                f"positive parameter initialised with a non-positive value {constrained!r}"
            )
        with np.errstate(divide="ignore"):
            return c + np.log1p(-np.exp(-c))


class UnitIntervalTransform(Transform):
    """The open unit interval via the logistic sigmoid.

    The output is clipped to ``[1e-12, 1 - 1e-12]`` so that even a saturated
    sigmoid (``u`` beyond ±37 rounds to exactly 0 or 1 in float64) stays
    inside the *open* interval the probability parameters it feeds require.
    """

    name = "unit"

    def forward(self, unconstrained: np.ndarray) -> np.ndarray:
        u = np.asarray(unconstrained, dtype=float)
        # Evaluate each branch only where it is stable (no overflow warnings).
        exp_neg = np.exp(-np.clip(u, 0.0, None))
        exp_pos = np.exp(np.clip(u, None, 0.0))
        sigmoid = np.where(u >= 0, 1.0 / (1.0 + exp_neg), exp_pos / (1.0 + exp_pos))
        return np.clip(sigmoid, 1e-12, 1.0 - 1e-12)

    def inverse(self, constrained: np.ndarray) -> np.ndarray:
        c = np.asarray(constrained, dtype=float)
        if np.any((c <= 0.0) | (c >= 1.0)):
            raise InferenceError(
                f"unit-interval parameter initialised outside (0, 1): {constrained!r}"
            )
        return np.log(c) - np.log1p(-c)


class SimplexTransform(Transform):
    """The probability simplex via softmax over an unconstrained vector.

    The map is many-to-one (softmax is shift-invariant); ``inverse`` picks
    the centred representative ``log p - mean(log p)`` so round-tripping is
    stable.  Applies to vector parameters of length >= 2.
    """

    name = "simplex"

    def forward(self, unconstrained: np.ndarray) -> np.ndarray:
        u = np.asarray(unconstrained, dtype=float)
        if u.ndim != 1 or u.size < 2:
            raise InferenceError(
                f"simplex parameters must be vectors of length >= 2, got shape {u.shape}"
            )
        shifted = np.exp(u - np.max(u))
        return shifted / shifted.sum()

    def inverse(self, constrained: np.ndarray) -> np.ndarray:
        c = np.asarray(constrained, dtype=float)
        if c.ndim != 1 or c.size < 2 or np.any(c <= 0.0):
            raise InferenceError(
                f"simplex parameter initialised with an invalid weight vector {constrained!r}"
            )
        log_p = np.log(c / c.sum())
        return log_p - log_p.mean()


TRANSFORMS: Dict[str, Transform] = {
    t.name: t
    for t in (RealTransform(), PositiveTransform(), UnitIntervalTransform(), SimplexTransform())
}


def get_transform(name: str) -> Transform:
    try:
        return TRANSFORMS[name]
    except KeyError:
        known = ", ".join(sorted(TRANSFORMS))
        raise InferenceError(f"unknown parameter constraint {name!r} (known: {known})")


@dataclass
class _ParamEntry:
    name: str
    transform: Transform


class ParamStore:
    """Named variational parameters with constraint transforms.

    Values are stored in *unconstrained* space (the space the optimiser and
    the score-function gradient work in); :meth:`constrained` and
    :meth:`guide_args` apply each parameter's transform on the way out.
    Registration order is the canonical coordinate order used by
    :meth:`coordinates` and :meth:`vector`.
    """

    def __init__(self) -> None:
        self._entries: "OrderedDict[str, _ParamEntry]" = OrderedDict()
        self._values: Dict[str, np.ndarray] = {}

    # -- registration ----------------------------------------------------------

    def register(self, name: str, init: object, constraint: str = "real") -> None:
        """Add parameter ``name`` with a *constrained-space* initial value."""
        if name in self._entries:
            raise InferenceError(f"parameter {name!r} is already registered")
        transform = get_transform(constraint)
        value = np.asarray(transform.inverse(np.asarray(init, dtype=float)), dtype=float)
        self._entries[name] = _ParamEntry(name=name, transform=transform)
        self._values[name] = value

    def __contains__(self, name: str) -> bool:
        return name in self._entries

    def __len__(self) -> int:
        return len(self._entries)

    def names(self) -> List[str]:
        return list(self._entries)

    # -- reading values --------------------------------------------------------

    def constrained(self, name: str) -> object:
        """The constrained value of ``name`` (floats for scalar parameters)."""
        entry = self._entry(name)
        value = entry.transform.forward(self._values[name])
        arr = np.asarray(value)
        return float(arr) if arr.ndim == 0 else arr

    def constrained_values(self) -> Dict[str, object]:
        return {name: self.constrained(name) for name in self._entries}

    def guide_args(self, param_names: Sequence[str]) -> Tuple[object, ...]:
        """Constrained values ordered as a guide entry procedure's parameters."""
        missing = [p for p in param_names if p not in self._entries]
        if missing:
            raise InferenceError(
                f"guide parameters {missing} have no registered variational parameter; "
                f"registered: {self.names()}"
            )
        return tuple(self.constrained(name) for name in param_names)

    def unconstrained_dict(self) -> Dict[str, np.ndarray]:
        """The live unconstrained value dict, updated in place by optimisers."""
        return self._values

    # -- flat-vector views (coordinate order = registration order) -------------

    @property
    def size(self) -> int:
        return sum(np.asarray(self._values[name]).size for name in self._entries)

    def coordinates(self) -> Iterator[Tuple[str, int]]:
        """All ``(name, flat_index)`` coordinates in registration order."""
        for name in self._entries:
            for index in range(np.asarray(self._values[name]).size):
                yield name, index

    def vector(self) -> np.ndarray:
        """Flatten the unconstrained values into one coordinate vector."""
        if not self._entries:
            return np.zeros(0)
        return np.concatenate(
            [np.asarray(self._values[name], dtype=float).reshape(-1) for name in self._entries]
        )

    def load_vector(self, theta: Sequence[float]) -> None:
        """Load a flat unconstrained coordinate vector (inverse of :meth:`vector`)."""
        theta = np.asarray(theta, dtype=float)
        if theta.size != self.size:
            raise InferenceError(
                f"parameter vector has {theta.size} coordinates, store has {self.size}"
            )
        offset = 0
        for name in self._entries:
            current = np.asarray(self._values[name])
            chunk = theta[offset : offset + current.size]
            offset += current.size
            self._values[name] = (
                np.asarray(float(chunk[0])) if current.ndim == 0 else chunk.reshape(current.shape)
            )

    # -- copies and perturbations ----------------------------------------------

    def copy(self) -> "ParamStore":
        clone = ParamStore()
        clone._entries = OrderedDict(self._entries)
        clone._values = {name: np.array(value, dtype=float) for name, value in self._values.items()}
        return clone

    def perturbed(self, name: str, index: int, delta: float) -> "ParamStore":
        """A copy with one unconstrained coordinate shifted by ``delta``."""
        clone = self.copy()
        value = clone._values[name]
        if value.ndim == 0:
            clone._values[name] = np.asarray(float(value) + delta)
        else:
            value.flat[index] += delta
        return clone

    # -- internals -------------------------------------------------------------

    def _entry(self, name: str) -> _ParamEntry:
        try:
            return self._entries[name]
        except KeyError:
            raise InferenceError(
                f"unknown parameter {name!r} (registered: {self.names()})"
            )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        inner = ", ".join(
            f"{name}={self.constrained(name)!r}[{entry.transform.name}]"
            for name, entry in self._entries.items()
        )
        return f"ParamStore({inner})"


def store_from_inits(
    inits: Dict[str, object], constraints: Optional[Dict[str, str]] = None
) -> ParamStore:
    """Build a :class:`ParamStore` from constrained initial values.

    ``constraints`` maps parameter names to transform names (default
    ``real``); unknown names in ``constraints`` are rejected so typos do not
    silently leave a parameter unconstrained.
    """
    constraints = dict(constraints or {})
    unknown = set(constraints) - set(inits)
    if unknown:
        raise InferenceError(
            f"constraints given for unregistered parameters: {sorted(unknown)}"
        )
    store = ParamStore()
    for name, init in inits.items():
        store.register(name, init, constraint=constraints.get(name, "real"))
    return store
