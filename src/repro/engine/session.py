"""Prepared model/guide sessions: parse, typecheck, and certify once.

A :class:`ProgramSession` is the building block for a serving layer: it
front-loads all per-pair work — parsing, guide-type inference, and the
absolute-continuity check — so that repeated inference requests against the
same pair pay only for the inference itself.  Sessions built from source
text are memoised in a small LRU cache keyed by the exact sources and
channel configuration.
"""

from __future__ import annotations

import time
from typing import Optional, Tuple

from repro.core.ast import Program
from repro.core.parser import parse_program
from repro.core.typecheck import (
    TYPECHECKER_VERSION,
    check_model_guide_pair,
    infer_guide_types,
)
from repro.engine.api import EngineResult, InferenceRequest, run_engine
from repro.errors import InferenceError
from repro.obs import REGISTRY, span
from repro.utils.lru import LruCache

_CACHE_EVICTIONS = REGISTRY.counter(
    "repro_cache_evictions_total",
    "Entries evicted from a cross-request cache by capacity pressure.",
    labels=("cache",),
)
_CACHE_SIZE = REGISTRY.gauge(
    "repro_cache_size",
    "Current entry count of a cross-request cache.",
    labels=("cache",),
)
_SESSION_CACHE_EVENTS = REGISTRY.counter(
    "repro_session_cache_total",
    "Session LRU lookups by outcome (hit: prepared pair reused; miss: full "
    "parse + typecheck).",
    labels=("event",),
)
_SESSION_PREPARE_SECONDS = REGISTRY.histogram(
    "repro_session_prepare_seconds",
    "Cold session preparation time: parsing both programs plus the "
    "model/guide certification check.",
)


def default_model_entry(program: Program, latent_channel: str) -> str:
    """The first procedure consuming the latent channel (CLI convention)."""
    for proc in program.procedures:
        if proc.consumes == latent_channel:
            return proc.name
    return program.procedures[0].name


def default_guide_entry(program: Program, latent_channel: str) -> str:
    """The first procedure providing the latent channel (CLI convention)."""
    for proc in program.procedures:
        if proc.provides == latent_channel:
            return proc.name
    return program.procedures[0].name


class ProgramSession:
    """A model/guide pair prepared for repeated inference requests."""

    def __init__(
        self,
        model_program: Program,
        guide_program: Program,
        model_entry: Optional[str] = None,
        guide_entry: Optional[str] = None,
        latent_channel: str = "latent",
        obs_channel: str = "obs",
        typecheck: bool = True,
    ):
        self.model_program = model_program
        self.guide_program = guide_program
        self.latent_channel = latent_channel
        self.obs_channel = obs_channel
        self.model_entry = model_entry or default_model_entry(model_program, latent_channel)
        self.guide_entry = guide_entry or default_guide_entry(guide_program, latent_channel)

        self._model_guide_types = None
        self._guide_guide_types = None
        #: Per-JIT-tier kernel memo: ``{"none": (kernel, reason), "mega": ...}``,
        #: filled in lazily by :meth:`fused_kernel`.
        self._fused = {}
        #: Compiled-backend feature check, filled in lazily by
        #: :meth:`fused_kernel`: ``None`` until a compiled-backend request
        #: arrives, then ``True``/``False``.
        self.compiled_backend_supported: Optional[bool] = None
        #: Why the compiled backend fell back to the interpreter (``None``
        #: while undecided or when the pair compiles).
        self.compiled_fallback_reason: Optional[str] = None
        self.check = None
        if typecheck:
            # check_model_guide_pair runs guide-type inference on both
            # programs internally; the per-program results below are inferred
            # lazily so a session construction typechecks each program once.
            self.check = check_model_guide_pair(
                model_program,
                guide_program,
                self.model_entry,
                self.guide_entry,
                latent_channel=latent_channel,
            )

    @property
    def model_guide_types(self):
        """Inferred guide types of the model program (computed on demand)."""
        if self._model_guide_types is None:
            self._model_guide_types = infer_guide_types(self.model_program)
        return self._model_guide_types

    @property
    def guide_guide_types(self):
        """Inferred guide types of the guide program (computed on demand)."""
        if self._guide_guide_types is None:
            self._guide_guide_types = infer_guide_types(self.guide_program)
        return self._guide_guide_types

    # -- certification ---------------------------------------------------------

    @property
    def certified(self) -> bool:
        """Absolute continuity certified by the guide-type check."""
        return self.check is not None and self.check.compatible

    @property
    def certification_reason(self) -> Optional[str]:
        """Why the pair is uncertified (``None`` when it is certified)."""
        if self.check is None:
            return "typechecking was skipped"
        if self.check.compatible:
            return None
        return self.check.reason

    def require_certified(self) -> None:
        """Raise :class:`InferenceError` unless absolute continuity is certified."""
        if self.check is None:
            raise InferenceError(
                "this session skipped typechecking; rebuild it with typecheck=True"
            )
        if not self.check.compatible:
            raise InferenceError(
                f"model/guide pair is not certified: {self.check.reason}"
            )

    # -- compiled backend ------------------------------------------------------

    def fused_kernel(self, jit: str = "none"):
        """The pair's compiled batched kernel, compiled once per tier and cached.

        ``jit="none"`` compiles the fused per-region kernel, ``jit="mega"``
        the cross-group megakernel.  Returns ``(kernel, None)`` when the
        pair is inside the compiled fragment and ``(None, reason)``
        otherwise; the latest decision is recorded on
        :attr:`compiled_backend_supported` / :attr:`compiled_fallback_reason`
        (both tiers share the same fragment gate, so the verdict does not
        depend on the tier).
        """
        if jit not in self._fused:
            from repro.engine.backend import fused_kernel_for

            self._fused[jit] = fused_kernel_for(
                self.model_program,
                self.guide_program,
                self.model_entry,
                self.guide_entry,
                latent_channel=self.latent_channel,
                obs_channel=self.obs_channel,
                jit=jit,
            )
        kernel, reason = self._fused[jit]
        self.compiled_backend_supported = kernel is not None
        self.compiled_fallback_reason = reason
        return self._fused[jit]

    # -- serving ---------------------------------------------------------------

    def infer(
        self,
        engine: str = "is",
        request: Optional[InferenceRequest] = None,
        **request_kwargs,
    ) -> EngineResult:
        """Run one inference request through a registered engine."""
        if request is not None and request_kwargs:
            raise InferenceError("pass either a request object or keyword fields, not both")
        if request is None:
            request = InferenceRequest(**request_kwargs)
        return run_engine(engine, self, request)

    # -- construction from source text (cached) --------------------------------

    @classmethod
    def from_sources(
        cls,
        model_source: str,
        guide_source: str,
        model_entry: Optional[str] = None,
        guide_entry: Optional[str] = None,
        latent_channel: str = "latent",
        obs_channel: str = "obs",
        typecheck: bool = True,
    ) -> "ProgramSession":
        """Build (or fetch from the LRU cache) a session from source text."""
        key = (
            TYPECHECKER_VERSION,
            model_source,
            guide_source,
            model_entry,
            guide_entry,
            latent_channel,
            obs_channel,
            typecheck,
        )
        cached = _SESSION_CACHE.get(key)
        if cached is not None:
            _SESSION_CACHE_EVENTS.labels(event="hit").inc()
            return cached
        _SESSION_CACHE_EVENTS.labels(event="miss").inc()
        started = time.perf_counter()
        with span("session.prepare", typecheck=typecheck):
            session = cls(
                parse_program(model_source),
                parse_program(guide_source),
                model_entry=model_entry,
                guide_entry=guide_entry,
                latent_channel=latent_channel,
                obs_channel=obs_channel,
                typecheck=typecheck,
            )
        _SESSION_PREPARE_SECONDS.observe(time.perf_counter() - started)
        _SESSION_CACHE.put(key, session)
        _CACHE_SIZE.labels(cache="session").set(len(_SESSION_CACHE))
        return session


_SESSION_CACHE: "LruCache[Tuple, ProgramSession]" = LruCache(
    64, on_evict=lambda _key, _value: _CACHE_EVICTIONS.labels(cache="session").inc()
)


def set_session_cache_capacity(capacity: int) -> None:
    """Re-cap the session LRU (``repro serve --session-cache``)."""
    _SESSION_CACHE.set_capacity(capacity)
    _CACHE_SIZE.labels(cache="session").set(len(_SESSION_CACHE))


def session_cache_len() -> int:
    """Current number of cached prepared sessions."""
    return len(_SESSION_CACHE)


def clear_session_cache() -> None:
    """Drop all cached sessions (used by tests and long-running servers)."""
    _SESSION_CACHE.clear()
    _CACHE_SIZE.labels(cache="session").set(0)
